"""Reference betweenness centrality (Brandes' algorithm, unweighted).

Paper Sec. V names betweenness centrality as "widely implemented but
not supported by either Graphalytics nor easy-parallel-graph-*"; GAP
itself ships a ``bc`` benchmark, so this reproduction implements it as
the extension path (approximate BC from a sample of source vertices,
exactly GAP's formulation).

The per-source sweep is the standard two-phase Brandes recursion:
forward BFS accumulating shortest-path counts ``sigma``, then a
reverse-level dependency accumulation.  Both phases are vectorized per
BFS level.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.frontier import dedup_ids, gather_slots
from repro.graph.scratch import scratch_for

__all__ = ["betweenness_centrality", "brandes_single_source"]


def brandes_single_source(graph: CSRGraph, source: int
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One Brandes sweep: returns (dependency, sigma, level).

    Frontier expansion uses the shared slot gather; the ``sigma`` and
    ``delta`` accumulations stay ``np.add.at`` -- float sums must keep
    their historical association to stay byte-identical.
    """
    n = graph.n_vertices
    scratch = scratch_for(graph, n, graph.n_edges)
    level = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    level[source] = 0
    sigma[source] = 1.0
    frontiers: list[np.ndarray] = [np.array([source], dtype=np.int64)]

    # Forward phase: level-synchronous expansion; sigma[child] +=
    # sigma[parent] over all tree-level edges.
    while True:
        frontier = frontiers[-1]
        gs = gather_slots(graph.row_ptr, frontier, scratch)
        if gs.total == 0:
            break
        nbrs = graph.col_idx[gs.slots]
        srcs = np.repeat(frontier, gs.counts)
        depth = level[frontier[0]] + 1
        fresh = level[nbrs] == -1
        new_v = dedup_ids(nbrs[fresh], n, scratch)
        level[new_v] = depth
        # Path counts flow along *all* edges into the next level.
        into_next = level[nbrs] == depth
        np.add.at(sigma, nbrs[into_next], sigma[srcs[into_next]])
        if new_v.size == 0:
            break
        frontiers.append(new_v)

    # Backward phase: delta[v] += sum over next-level successors w of
    # sigma[v]/sigma[w] * (1 + delta[w]).
    delta = np.zeros(n, dtype=np.float64)
    for frontier in reversed(frontiers[1:]):
        gs = gather_slots(graph.row_ptr, frontier, scratch)
        if gs.total == 0:
            continue
        nbrs = graph.col_idx[gs.slots]
        srcs = np.repeat(frontier, gs.counts)
        # Predecessor edges run from level d-1 to d; here we iterate
        # vertices at level d and pull from their successors at d+1 --
        # equivalently push contributions to their predecessors, so
        # look at edges from this frontier *into the previous level*'s
        # successors: select edges whose target is one level deeper.
        deeper = level[nbrs] == level[srcs][0] + 1
        contrib = np.zeros(frontier.size)
        if deeper.any():
            terms = (sigma[srcs[deeper]] / sigma[nbrs[deeper]]) * (
                1.0 + delta[nbrs[deeper]])
            idx = np.searchsorted(frontier, srcs[deeper])
            np.add.at(contrib, idx, terms)
        delta[frontier] += contrib
    # Also accumulate for the source's own frontier-0 vertex.
    frontier = frontiers[0]
    nbr_slice = graph.neighbors(source)
    succ = nbr_slice[level[nbr_slice] == 1]
    if succ.size:
        delta[source] += float(
            ((sigma[source] / sigma[succ]) * (1.0 + delta[succ])).sum())
    return delta, sigma, level


def betweenness_centrality(graph: CSRGraph,
                           sources: np.ndarray | None = None,
                           normalize: bool = True) -> np.ndarray:
    """Approximate BC from a set of source vertices (GAP's ``bc -i``).

    With ``sources=None``, all vertices are swept (exact BC).  The
    returned scores exclude endpoint contributions, matching both GAP
    and networkx conventions; ``normalize`` rescales by the number of
    sources over n so sampled runs estimate the exact values.
    """
    n = graph.n_vertices
    if sources is None:
        sources = np.arange(n, dtype=np.int64)
    scores = np.zeros(n, dtype=np.float64)
    for s in np.asarray(sources, dtype=np.int64):
        delta, _, _ = brandes_single_source(graph, int(s))
        delta[s] = 0.0
        scores += delta
    if normalize and len(sources):
        scores *= n / float(len(sources))
    return scores
