"""Reference maximal independent set (deterministic Luby rounds).

Luby's algorithm is randomized per round; to keep the PR-5 bit-identity
contract across five systems we fix the randomness *once*: a seeded
priority permutation drawn up front.  A vertex joins the set when its
priority beats every undecided neighbor's; its neighbors drop out.
With static priorities the rounds compute exactly the sequential greedy
MIS in priority order (the lexicographically-first MIS under the
permutation), so the result is unique given the seed -- every system
that shares :func:`mis_priorities` must produce the identical set.

Defined on the simple undirected view: self-loops are dropped (a
self-looped vertex would otherwise lose to itself forever and no round
could ever decide it), duplicate edges are harmless to a min.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.simple import SimpleView, simple_undirected_view

__all__ = [
    "DEFAULT_MIS_SEED",
    "mis_priorities",
    "maximal_independent_set",
    "luby_rounds",
]

#: Graph500's date-of-specification seed idiom; any fixed value works,
#: it just has to be the same one in every system.
DEFAULT_MIS_SEED = 20170402


def mis_priorities(n: int, seed: int = DEFAULT_MIS_SEED) -> np.ndarray:
    """Seeded priority permutation of ``0..n-1`` (lower wins)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


def luby_rounds(view: SimpleView, priorities: np.ndarray
                ) -> tuple[np.ndarray, int]:
    """Run the rounds on an already-simplified view.

    Returns (membership mask, number of rounds).
    """
    n = view.n
    in_set = np.zeros(n, dtype=bool)
    decided = np.zeros(n, dtype=bool)
    if n == 0:
        return in_set, 0
    sentinel = np.int64(n)
    starts = view.indptr[:-1]
    nonempty = view.degrees > 0
    rounds = 0
    while not decided.all():
        rounds += 1
        vals = np.where(decided[view.indices], sentinel,
                        priorities[view.indices])
        best = np.full(n, sentinel, dtype=np.int64)
        if nonempty.any():
            # Empty rows occupy zero width, so the starts of the
            # non-empty rows alone partition ``vals`` correctly.
            best[nonempty] = np.minimum.reduceat(vals, starts[nonempty])
        winners = ~decided & (priorities < best)
        # The undecided vertex with the globally smallest priority
        # always wins, so progress is guaranteed.
        in_set[winners] = True
        decided[winners] = True
        losers = view.neighbors_of(np.flatnonzero(winners))
        decided[losers] = True
    return in_set, rounds


def maximal_independent_set(graph: CSRGraph,
                            priorities: np.ndarray | None = None,
                            seed: int = DEFAULT_MIS_SEED) -> np.ndarray:
    """Membership mask of the (priority-unique) MIS."""
    view = simple_undirected_view(
        graph.source_ids(), graph.col_idx, graph.n_vertices)
    if priorities is None:
        priorities = mis_priorities(view.n, seed)
    in_set, _ = luby_rounds(view, np.asarray(priorities, dtype=np.int64))
    return in_set
