"""Reference PageRank (pull-style power iteration, float64).

Uses the stopping criterion the paper homogenizes all systems to
(Sec. III-D): iterate until the L1 norm of the rank change,
``sum_k |p_k^(i) - p_k^(i-1)|``, drops below epsilon, with the paper's
default ``eps = 6e-8`` (~single-precision machine epsilon).

Dangling vertices (out-degree 0) redistribute their rank uniformly, the
standard formulation, so ranks always sum to 1.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["pagerank", "DEFAULT_EPSILON", "DEFAULT_DAMPING"]

DEFAULT_EPSILON = 6e-8
DEFAULT_DAMPING = 0.85
DEFAULT_MAX_ITERATIONS = 1000


def pagerank(graph: CSRGraph, damping: float = DEFAULT_DAMPING,
             epsilon: float = DEFAULT_EPSILON,
             max_iterations: int = DEFAULT_MAX_ITERATIONS,
             ) -> tuple[np.ndarray, int]:
    """Return ``(ranks, iterations)``.

    ``ranks`` sums to 1; ``iterations`` is the number of power-iteration
    sweeps executed before the L1 criterion was met.
    """
    n = graph.n_vertices
    if n == 0:
        return np.zeros(0), 0
    out_deg = graph.out_degrees().astype(np.float64)
    dangling = out_deg == 0
    src = graph.source_ids()
    dst = graph.col_idx

    rank = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    for it in range(1, max_iterations + 1):
        contrib = np.zeros(n)
        if src.size:
            share = rank[src] / out_deg[src]
            np.add.at(contrib, dst, share)
        dangling_mass = rank[dangling].sum() / n
        new_rank = base + damping * (contrib + dangling_mass)
        delta = np.abs(new_rank - rank).sum()
        rank = new_rank
        if delta < epsilon:
            return rank, it
    return rank, max_iterations
