"""Reference single-source shortest paths (Dijkstra via scipy)."""

from __future__ import annotations

import numpy as np
import scipy.sparse.csgraph as csgraph

from repro.errors import ValidationError
from repro.graph.csr import CSRGraph

__all__ = ["sssp_dijkstra"]


def sssp_dijkstra(graph: CSRGraph, root: int) -> np.ndarray:
    """Exact shortest-path distances from ``root``.

    Unreachable vertices get ``+inf``.  The graph must carry
    non-negative weights (the Graph500 SSSP convention; all datasets the
    harness produces satisfy it).
    """
    if graph.weights is None:
        raise ValidationError("SSSP requires a weighted graph")
    if graph.n_edges and graph.weights.min() < 0:
        raise ValidationError("Dijkstra requires non-negative weights")
    # scipy sums duplicate entries when canonicalizing; parallel edges must
    # instead keep their *minimum* weight, so dedupe explicitly first.
    import scipy.sparse as sp

    n = graph.n_vertices
    src = graph.source_ids()
    dst = graph.col_idx
    w = graph.weights
    if graph.n_edges:
        # Min weight per (src, dst) pair: one radix argsort on the
        # combined integer key + segmented min, instead of the old
        # two-key ``np.lexsort((w, key))`` (same selected weights --
        # the minimum of a run is order-independent).
        key = src * np.int64(n) + dst
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        first = np.ones(key_sorted.size, dtype=bool)
        first[1:] = key_sorted[1:] != key_sorted[:-1]
        sel = order[first]
        src, dst = src[sel], dst[sel]
        w = np.minimum.reduceat(w[order], np.flatnonzero(first))
    mat = sp.csr_matrix((w, (src, dst)), shape=(n, n))
    dist = csgraph.dijkstra(mat, directed=True, indices=root)
    return np.asarray(dist, dtype=np.float64)
