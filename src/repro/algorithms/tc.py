"""Reference triangle counting.

The second Sec. V "widely implemented but unsupported" kernel (GAP
ships ``tc``).  Counts unique triangles in the undirected simple view
of the graph via masked sparse products over an orientation: directing
every edge from lower to higher degree (GAP's relabeling trick) makes
each triangle countable exactly once.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.csr import CSRGraph
from repro.graph.frontier import resolve_batch_rows

__all__ = ["triangle_count"]


def triangle_count(graph: CSRGraph, batch_rows: int | None = None) -> int:
    """Number of unique triangles (undirected, loops/duplicates ignored).

    ``batch_rows`` (default: min(2048, n)) is the SpGEMM row-block
    width; out-of-range values raise
    :class:`~repro.errors.ConfigError`.
    """
    n = graph.n_vertices
    batch_rows = resolve_batch_rows(batch_rows, n)
    src = graph.source_ids()
    dst = graph.col_idx
    keep = src != dst
    und = sp.csr_matrix(
        (np.ones(int(keep.sum()), dtype=np.int64),
         (src[keep], dst[keep])), shape=(n, n))
    und = und + und.T
    und.data[:] = 1
    und.sum_duplicates()
    und.data[:] = 1
    und = und.tocsr()

    # Degree-based total order: orient u -> v iff (deg, id) of u is
    # less than v's; every triangle has exactly one cyclic orientation
    # counted once by A_or @ A_or masked on A_or.
    deg = np.asarray(und.sum(axis=1)).ravel()
    coo = und.tocoo()
    u, v = coo.row, coo.col
    forward = (deg[u] < deg[v]) | ((deg[u] == deg[v]) & (u < v))
    a_or = sp.csr_matrix(
        (np.ones(int(forward.sum()), dtype=np.int64),
         (u[forward], v[forward])), shape=(n, n))

    total = 0
    for lo in range(0, n, batch_rows):
        hi = min(lo + batch_rows, n)
        block = (a_or[lo:hi] @ a_or).multiply(a_or[lo:hi])
        total += int(block.sum())
    return total
