"""Reference community detection by label propagation (CDLP).

The Graphalytics CDLP specification (the "community detection uses label
propagation" note under Table II): every vertex starts with its own id
as label; each synchronous round it adopts the most frequent label among
its incoming neighbors, breaking ties toward the smallest label; run a
fixed number of rounds.  Deterministic by construction.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["cdlp", "DEFAULT_CDLP_ITERATIONS", "propagate_labels_once"]

DEFAULT_CDLP_ITERATIONS = 10


def propagate_labels_once(src: np.ndarray, dst: np.ndarray,
                          labels: np.ndarray, n: int) -> np.ndarray:
    """One synchronous round: mode of neighbor labels, min-label ties.

    Vectorized: sort (vertex, label) pairs, run-length encode to get per
    (vertex, label) frequencies, then take per-vertex argmax with the
    sort order guaranteeing the smallest label wins ties.
    """
    if src.size == 0:
        return labels.copy()
    v = dst
    lab = labels[src]
    if n <= np.iinfo(np.int64).max // max(n, 1):
        # Labels are vertex ids (< n), so (v, label) packs into one
        # int64 key and a single stable (radix) argsort replaces the
        # two-key lexsort -- same permutation, both sorts are stable.
        order = np.argsort(v * np.int64(n) + lab, kind="stable")
    else:  # pragma: no cover - n beyond any harness scale
        order = np.lexsort((lab, v))
    v_s = v[order]
    lab_s = lab[order]
    # Run starts of equal (v, label) pairs.
    new_pair = np.ones(v_s.size, dtype=bool)
    new_pair[1:] = (v_s[1:] != v_s[:-1]) | (lab_s[1:] != lab_s[:-1])
    starts = np.flatnonzero(new_pair)
    counts = np.diff(np.append(starts, v_s.size))
    pair_v = v_s[starts]
    pair_lab = lab_s[starts]
    # Pick, per vertex, the (count, -label) max.  Sorting by
    # (vertex, count, reversed label) puts the winner last in each group.
    sel = np.lexsort((-pair_lab, counts, pair_v))
    pv = pair_v[sel]
    last = np.ones(pv.size, dtype=bool)
    last[:-1] = pv[1:] != pv[:-1]
    winners_v = pv[last]
    winners_lab = pair_lab[sel][last]
    out = labels.copy()
    out[winners_v] = winners_lab
    return out


def cdlp(graph: CSRGraph, iterations: int = DEFAULT_CDLP_ITERATIONS
         ) -> np.ndarray:
    """Run ``iterations`` synchronous label-propagation rounds."""
    n = graph.n_vertices
    labels = np.arange(n, dtype=np.int64)
    src = graph.source_ids()
    dst = graph.col_idx
    for _ in range(iterations):
        labels = propagate_labels_once(src, dst, labels, n)
    return labels
