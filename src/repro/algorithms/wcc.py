"""Reference weakly connected components (scipy union-find)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graph.csr import CSRGraph

__all__ = ["weakly_connected_components", "canonical_component_labels"]


def weakly_connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex, canonicalized (see below)."""
    n = graph.n_vertices
    src = graph.source_ids()
    mat = sp.csr_matrix(
        (np.ones(graph.n_edges, dtype=np.int8), (src, graph.col_idx)),
        shape=(n, n))
    _, labels = csgraph.connected_components(
        mat, directed=True, connection="weak")
    return canonical_component_labels(labels)


def canonical_component_labels(labels: np.ndarray) -> np.ndarray:
    """Relabel components by their minimum member vertex id.

    Systems produce arbitrary component ids; the Graphalytics convention
    (label = smallest vertex id in the component) makes outputs directly
    comparable, so both the reference and every system normalize to it.
    """
    labels = np.asarray(labels)
    n = labels.size
    if n == 0:
        return labels.astype(np.int64)
    mins = np.full(int(labels.max()) + 1, np.iinfo(np.int64).max,
                   dtype=np.int64)
    np.minimum.at(mins, labels, np.arange(n, dtype=np.int64))
    return mins[labels]
