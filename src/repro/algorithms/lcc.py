"""Reference local clustering coefficient (LCC).

For every vertex ``v`` with neighborhood ``N(v)`` (union of in- and
out-neighbors, self-loops excluded), LCC is the number of arcs between
members of ``N(v)`` divided by ``d(d-1)`` where ``d = |N(v)|`` -- the
Graphalytics definition, which is what Tables I-II time.  LCC is by far
the most expensive kernel in those tables (dota-league's dense
neighborhoods produce enormous wedge counts), which this implementation
preserves: cost scales with ``sum_v d(v)^2``.

Computed with batched sparse matrix products so the ``A @ A``
intermediate never materializes for the whole graph at once.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.csr import CSRGraph

__all__ = ["local_clustering", "lcc_wedge_count"]


def _undirected_pattern(graph: CSRGraph) -> sp.csr_matrix:
    """0/1 symmetric adjacency without self-loops or duplicates."""
    n = graph.n_vertices
    src = graph.source_ids()
    dst = graph.col_idx
    keep = src != dst
    src, dst = src[keep], dst[keep]
    a = sp.csr_matrix(
        (np.ones(src.size, dtype=np.int64), (src, dst)), shape=(n, n))
    a = a + a.T
    a.data[:] = 1
    a.sum_duplicates()
    a.data[:] = 1
    return a.tocsr()


def local_clustering(graph: CSRGraph,
                     batch_rows: int | None = None) -> np.ndarray:
    """LCC per vertex (0.0 for vertices with fewer than 2 neighbors).

    ``batch_rows`` (default: min(2048, n)) is the SpGEMM row-block
    width; out-of-range values raise ``ConfigError``.
    """
    from repro.graph.frontier import resolve_batch_rows

    n = graph.n_vertices
    batch_rows = resolve_batch_rows(batch_rows, n)
    und = _undirected_pattern(graph)
    deg = np.asarray(und.sum(axis=1)).ravel()

    # Directed arc count inside each neighborhood: for vertex v this is
    # sum over ordered neighbor pairs (x, y) with an arc x->y, i.e.
    # (A_und @ A_dir) restricted to the undirected pattern, summed by row
    # ... where A_dir is the original directed adjacency (deduped).
    src = graph.source_ids()
    dst = graph.col_idx
    keep = src != dst
    a_dir = sp.csr_matrix(
        (np.ones(keep.sum(), dtype=np.int64),
         (src[keep], dst[keep])), shape=(n, n))
    a_dir.sum_duplicates()
    a_dir.data[:] = 1

    tri = np.zeros(n, dtype=np.float64)
    for lo in range(0, n, batch_rows):
        hi = min(lo + batch_rows, n)
        block = und[lo:hi] @ a_dir          # wedges from rows lo:hi
        block = block.multiply(und[lo:hi])  # close them on the pattern
        tri[lo:hi] = np.asarray(block.sum(axis=1)).ravel()

    denom = deg * (deg - 1)
    out = np.zeros(n, dtype=np.float64)
    mask = denom > 0
    out[mask] = tri[mask] / denom[mask]
    return out


def lcc_wedge_count(graph: CSRGraph) -> float:
    """Total wedge work, ``sum_v d(v) * (d(v) - 1)`` -- the quantity the
    systems' cost models charge for LCC."""
    und = _undirected_pattern(graph)
    deg = np.asarray(und.sum(axis=1)).ravel().astype(np.float64)
    return float((deg * (deg - 1)).sum())
