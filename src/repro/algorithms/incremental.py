"""Incremental kernels: repair BFS / SSSP / PageRank across a batch.

The streaming scenario family (``repro.streaming``, docs/streaming.md)
applies :class:`~repro.graph.dynamic.MutationBatch` deltas and asks the
kernels to *repair* their previous answer instead of recomputing from
scratch.  The contracts, enforced by ``benchmarks/bench_stream.py``:

* :class:`IncrementalBFS` and :class:`IncrementalSSSP` produce arrays
  **bit-identical** to the from-scratch references
  (:func:`~repro.algorithms.bfs.bfs_parents`,
  :func:`~repro.algorithms.sssp.sssp_dijkstra`) on the post-batch
  snapshot.  Both references have mathematically unique outputs: BFS
  levels are hop distances and its parent rule is "minimum id among
  in-neighbors one level up"; Dijkstra's float distances satisfy
  ``d[v] = min over in-arcs of fl(d[u] + w)`` regardless of relaxation
  order (``fl(a + b) >= a`` for ``b >= 0``, and the repair performs the
  same double-precision additions).

* :class:`IncrementalPageRank` warm-starts power iteration from the
  pre-mutation vector under the paper's L1 stopping criterion.  Bitwise
  identity is **not** achievable here -- the eps-ball around the true
  fixed point contains many bitwise-distinct stopping points, and which
  one an iteration lands on depends on its starting vector -- so the
  contract is the provable contraction bound instead: both warm and
  cold results lie within ``eps * damping / (1 - damping)`` (L1) of the
  true fixed point, hence within twice that of each other
  (:func:`pagerank_l1_bound`).  The gate asserts the bound and records
  the measured distance.

Deletion repair is Ramalingam-Reps style: arcs whose removal cuts a
shortest-path-tree link orphan the cut vertex's whole tree subtree;
orphans are unsettled and re-settled -- together with insertion-improved
vertices -- by a monotone Dijkstra pass over the affected region only
(the shared :class:`~repro.graph.frontier.BucketQueue` for unit-weight
BFS, a lazy-deletion binary heap for float SSSP).  Vertices outside the
affected region keep their answer: a non-orphan's parent chain is
intact, so its distance cannot increase, and any decrease must travel
through an inserted arc or a repaired vertex, both of which seed or
relax the queue.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.algorithms.bfs import bfs_parents
from repro.algorithms.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_EPSILON,
    DEFAULT_MAX_ITERATIONS,
    pagerank,
)
from repro.algorithms.sssp import sssp_dijkstra
from repro.errors import ValidationError
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import AppliedBatch
from repro.graph.frontier import BucketQueue, gather_slots
from repro.graph.scratch import scratch_for

__all__ = ["IncrementalBFS", "IncrementalSSSP", "IncrementalPageRank",
           "RepairStats", "pagerank_warm", "pagerank_l1_bound",
           "INF_LEVEL"]

#: Unreached sentinel for integer levels during repair.  Deliberately
#: ``2**62`` and not ``iinfo.max``: relaxation computes ``level + 1``,
#: which must not wrap.
INF_LEVEL = np.int64(1) << 62


@dataclass(frozen=True)
class RepairStats:
    """What one :meth:`update` actually did (deterministic counters)."""

    #: Vertices whose shortest-path-tree parent arc the batch removed.
    n_cut: int
    #: Tree descendants of the cut vertices (unsettled for repair).
    n_orphaned: int
    #: Vertices (re)settled by the affected-region Dijkstra pass.
    n_resettled: int


def _tree_descendants(graph: CSRGraph, parent: np.ndarray,
                      seeds: np.ndarray, scratch) -> np.ndarray:
    """Sorted unique tree-descendant closure of ``seeds`` (inclusive).

    Walks the shortest-path tree *downward over the post-batch
    adjacency*: ``u`` is a tree child of ``v`` iff ``parent[u] == v``
    and the arc ``(v, u)`` survives.  A child whose tree arc the batch
    removed is itself in the cut seed set (that is what cut detection
    finds), so the walk misses nothing -- and its cost is proportional
    to the subtree's out-degree sum, not the whole tree (repairing a
    small batch must not pay an ``O(n log n)`` children-sort; the
    stream gate times exactly this).
    """
    if seeds.size == 0:
        return seeds
    out = [seeds]
    frontier = seeds
    while frontier.size:
        gs = gather_slots(graph.row_ptr, frontier, scratch)
        if gs.total == 0:
            break
        nbrs = graph.col_idx[gs.slots]
        srcs = np.repeat(frontier, gs.counts)
        # Each vertex has one parent, so children are duplicate-free.
        frontier = nbrs[parent[nbrs] == srcs]
        if frontier.size:
            out.append(frontier)
    return np.unique(np.concatenate(out))


def _segmented_min(values: np.ndarray, offsets: np.ndarray,
                   counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment minimum; returns (mins over non-empty, non-empty mask)."""
    nonempty = counts > 0
    if not nonempty.any():
        return np.empty(0, dtype=values.dtype), nonempty
    return np.minimum.reduceat(values, offsets[nonempty]), nonempty


class IncrementalBFS:
    """Dynamic BFS repair; state bit-identical to :func:`bfs_parents`.

    Attributes ``parent`` and ``level`` always equal the from-scratch
    arrays for the current snapshot (``-1`` marks unreached,
    ``parent[root] == root``).
    """

    def __init__(self, graph: CSRGraph, root: int):
        self.root = int(root)
        self.parent, self.level = bfs_parents(graph, self.root)
        self.graph = graph

    def update(self, graph: CSRGraph,
               applied: AppliedBatch) -> RepairStats:
        """Repair across one applied batch; ``graph`` is the post-batch
        snapshot."""
        n = graph.n_vertices
        root = self.root
        parent, level = self.parent, self.level
        dist = np.where(level >= 0, level, INF_LEVEL)

        # 1. Cut detection: removed arcs that carried a tree link.
        rd = applied.removed_dst
        cut = np.unique(rd[(parent[rd] == applied.removed_src)
                           & (rd != root)])

        rev = graph.transposed()
        scratch = scratch_for(graph, n, graph.n_edges)
        rscratch = scratch_for(rev, n, rev.n_edges)

        # 2. Orphan the cut vertices' whole tree subtrees.
        orphans = _tree_descendants(graph, parent, cut, scratch)
        dist[orphans] = INF_LEVEL

        bq = BucketQueue()
        touched_parts: list[np.ndarray] = []

        def offer(vs: np.ndarray, cand: np.ndarray) -> None:
            ok = cand < dist[vs]
            if not ok.any():
                return
            vs, cand = vs[ok], cand[ok]
            np.minimum.at(dist, vs, cand)
            uv = np.unique(vs)
            touched_parts.append(uv)
            bq.push(uv, dist[uv])

        # 3a. Seed orphans from their still-settled in-neighbors.
        if orphans.size:
            gs = gather_slots(rev.row_ptr, orphans, rscratch)
            if gs.total:
                innb = rev.col_idx[gs.slots]
                mins, nonempty = _segmented_min(dist[innb], gs.offsets,
                                                gs.counts)
                offer(orphans[nonempty], mins + 1)
        # 3b. Seed insertion improvements.
        if applied.inserted_src.size:
            offer(applied.inserted_dst,
                  dist[applied.inserted_src] + 1)

        # 4. Monotone re-settle over the affected region only.
        n_resettled = 0
        while True:
            popped = bq.pop(dist)
            if popped is None:
                break
            k, members = popped
            n_resettled += members.size
            gs = gather_slots(graph.row_ptr, members, scratch)
            if gs.total:
                nbrs = graph.col_idx[gs.slots]
                offer(nbrs, np.full(nbrs.size, k + 1, dtype=np.int64))

        # 5. Recompute parents wherever the witness set may have moved:
        #    orphans, every dist-changed vertex, insertion targets, and
        #    out-neighbors of moved vertices that sit exactly one level
        #    below them (a moved vertex can become their new minimum
        #    witness without their own level changing).
        touched = (np.unique(np.concatenate(touched_parts))
                   if touched_parts else np.empty(0, dtype=np.int64))
        moved = np.unique(np.concatenate([orphans, touched]))
        extra = [moved, applied.inserted_dst]
        if moved.size:
            gs = gather_slots(graph.row_ptr, moved, scratch)
            if gs.total:
                nbrs = graph.col_idx[gs.slots]
                srcs = np.repeat(moved, gs.counts)
                extra.append(nbrs[dist[nbrs] == dist[srcs] + 1])
        recompute = np.unique(np.concatenate(extra))
        recompute = recompute[recompute != root]
        self._recompute_parents(graph, rev, rscratch, dist, parent,
                                recompute)

        self.level = np.where(dist < INF_LEVEL, dist, -1)
        self.graph = graph
        return RepairStats(n_cut=int(cut.size),
                           n_orphaned=int(orphans.size),
                           n_resettled=int(n_resettled))

    @staticmethod
    def _recompute_parents(graph: CSRGraph, rev: CSRGraph, rscratch,
                           dist: np.ndarray, parent: np.ndarray,
                           verts: np.ndarray) -> None:
        """``parent[v] = min{u in in(v): dist[u] == dist[v] - 1}`` --
        exactly the claim-first-parent winner of the reference BFS."""
        if verts.size == 0:
            return
        unreached = verts[dist[verts] >= INF_LEVEL]
        parent[unreached] = -1
        fin = verts[dist[verts] < INF_LEVEL]
        if fin.size == 0:
            return
        gs = gather_slots(rev.row_ptr, fin, rscratch)
        n = graph.n_vertices
        innb = rev.col_idx[gs.slots]
        want = np.repeat(dist[fin] - 1, gs.counts)
        cand = np.where(dist[innb] == want, innb, np.int64(n))
        mins, nonempty = _segmented_min(cand, gs.offsets, gs.counts)
        if (~nonempty).any() or (mins >= n).any():
            raise ValidationError(
                "BFS repair: reached vertex lost every parent witness")
        parent[fin] = mins


class IncrementalSSSP:
    """Dynamic SSSP repair; ``dist`` bit-identical to
    :func:`sssp_dijkstra` on the current snapshot.

    ``parent`` holds, for every finite non-root vertex, the minimum-id
    *supporter* ``u`` with ``fl(dist[u] + w(u, v)) == dist[v]`` -- the
    invariant cut detection needs (a removed arc can only invalidate
    ``dist[v]`` by removing its support; any surviving supporter keeps
    the old distance valid).
    """

    def __init__(self, graph: CSRGraph, root: int):
        if graph.weights is None:
            raise ValidationError(
                "incremental SSSP requires a weighted graph")
        self.root = int(root)
        self.dist = sssp_dijkstra(graph, self.root)
        self.parent = np.full(graph.n_vertices, -1, dtype=np.int64)
        self.parent[self.root] = self.root
        fin = np.flatnonzero(np.isfinite(self.dist))
        self._recompute_parents(graph, self.dist, self.parent,
                                fin[fin != self.root])
        self.graph = graph

    def update(self, graph: CSRGraph,
               applied: AppliedBatch) -> RepairStats:
        n = graph.n_vertices
        root = self.root
        dist, parent = self.dist, self.parent

        rd = applied.removed_dst
        cut = np.unique(rd[(parent[rd] == applied.removed_src)
                           & (rd != root)])
        rev = graph.transposed()
        scratch = scratch_for(graph, n, graph.n_edges)
        rscratch = scratch_for(rev, n, rev.n_edges)

        orphans = _tree_descendants(graph, parent, cut, scratch)
        dist[orphans] = np.inf

        heap: list[tuple[float, int]] = []
        touched_parts: list[np.ndarray] = []

        def offer(vs: np.ndarray, cand: np.ndarray) -> None:
            ok = cand < dist[vs]
            if not ok.any():
                return
            vs, cand = vs[ok], cand[ok]
            np.minimum.at(dist, vs, cand)
            uv = np.unique(vs)
            touched_parts.append(uv)
            for v in uv:
                heapq.heappush(heap, (float(dist[v]), int(v)))

        if orphans.size:
            gs = gather_slots(rev.row_ptr, orphans, rscratch)
            if gs.total:
                innb = rev.col_idx[gs.slots]
                cand = dist[innb] + rev.weights[gs.slots]
                mins, nonempty = _segmented_min(cand, gs.offsets,
                                                gs.counts)
                finite = np.isfinite(mins)
                offer(orphans[nonempty][finite], mins[finite])
        if applied.inserted_src.size:
            src_d = dist[applied.inserted_src]
            finite = np.isfinite(src_d)
            if finite.any():
                offer(applied.inserted_dst[finite],
                      src_d[finite] + applied.inserted_weights[finite])

        # Lazy-deletion Dijkstra over the affected region.  The settle
        # order is immaterial for the final floats (see the module
        # docstring); a Python heap is fine because small batches touch
        # small regions -- exactly the regime the gate times.
        row_ptr, col_idx, weights = (graph.row_ptr, graph.col_idx,
                                     graph.weights)
        n_resettled = 0
        while heap:
            d, v = heapq.heappop(heap)
            if d != dist[v]:
                continue            # stale entry (improved since push)
            n_resettled += 1
            s, e = row_ptr[v], row_ptr[v + 1]
            if e > s:
                offer(col_idx[s:e], d + weights[s:e])

        touched = (np.unique(np.concatenate(touched_parts))
                   if touched_parts else np.empty(0, dtype=np.int64))
        moved = np.unique(np.concatenate([orphans, touched]))
        extra = [moved, applied.inserted_dst]
        fin_moved = moved[np.isfinite(dist[moved])]
        if fin_moved.size:
            gs = gather_slots(graph.row_ptr, fin_moved, scratch)
            if gs.total:
                nbrs = col_idx[gs.slots]
                srcs = np.repeat(fin_moved, gs.counts)
                support = dist[srcs] + weights[gs.slots] == dist[nbrs]
                extra.append(nbrs[support])
        recompute = np.unique(np.concatenate(extra))
        recompute = recompute[recompute != root]
        self._recompute_parents(graph, dist, parent, recompute)

        self.graph = graph
        return RepairStats(n_cut=int(cut.size),
                           n_orphaned=int(orphans.size),
                           n_resettled=int(n_resettled))

    @staticmethod
    def _recompute_parents(graph: CSRGraph, dist: np.ndarray,
                           parent: np.ndarray,
                           verts: np.ndarray) -> None:
        """``parent[v] = min{u in in(v): dist[u] + w == dist[v]}``
        (exact float equality: both sides are the same double sums)."""
        if verts.size == 0:
            return
        unreached = verts[~np.isfinite(dist[verts])]
        parent[unreached] = -1
        fin = verts[np.isfinite(dist[verts])]
        if fin.size == 0:
            return
        rev = graph.transposed()
        rscratch = scratch_for(rev, graph.n_vertices, rev.n_edges)
        gs = gather_slots(rev.row_ptr, fin, rscratch)
        n = graph.n_vertices
        innb = rev.col_idx[gs.slots]
        want = np.repeat(dist[fin], gs.counts)
        support = dist[innb] + rev.weights[gs.slots] == want
        cand = np.where(support, innb, np.int64(n))
        mins, nonempty = _segmented_min(cand, gs.offsets, gs.counts)
        if (~nonempty).any() or (mins >= n).any():
            raise ValidationError(
                "SSSP repair: reached vertex lost every supporter")
        parent[fin] = mins


def pagerank_warm(graph: CSRGraph, rank0: np.ndarray,
                  damping: float = DEFAULT_DAMPING,
                  epsilon: float = DEFAULT_EPSILON,
                  max_iterations: int = DEFAULT_MAX_ITERATIONS,
                  ) -> tuple[np.ndarray, int]:
    """Power iteration warm-started from ``rank0``.

    Identical per-sweep arithmetic to
    :func:`~repro.algorithms.pagerank.pagerank` (same ``np.add.at``
    association, same L1 stop), differing only in the starting vector,
    so the contraction bound of :func:`pagerank_l1_bound` applies to
    the pair of results.
    """
    n = graph.n_vertices
    if n == 0:
        return np.zeros(0), 0
    rank0 = np.asarray(rank0, dtype=np.float64)
    if rank0.shape != (n,):
        raise ValidationError(
            f"warm-start vector has shape {rank0.shape}, graph has "
            f"{n} vertices")
    out_deg = graph.out_degrees().astype(np.float64)
    dangling = out_deg == 0
    src = graph.source_ids()
    dst = graph.col_idx

    rank = rank0.copy()
    base = (1.0 - damping) / n
    for it in range(1, max_iterations + 1):
        contrib = np.zeros(n)
        if src.size:
            share = rank[src] / out_deg[src]
            np.add.at(contrib, dst, share)
        dangling_mass = rank[dangling].sum() / n
        new_rank = base + damping * (contrib + dangling_mass)
        delta = np.abs(new_rank - rank).sum()
        rank = new_rank
        if delta < epsilon:
            return rank, it
    return rank, max_iterations


def pagerank_l1_bound(damping: float = DEFAULT_DAMPING,
                      epsilon: float = DEFAULT_EPSILON) -> float:
    """Maximum L1 distance between two converged PageRank runs.

    The power-iteration map contracts L1 distances by ``damping``, so a
    run stopping when its step shrinks below ``epsilon`` is within
    ``epsilon * damping / (1 - damping)`` of the true fixed point;
    two such runs are within twice that of each other.
    """
    return 2.0 * epsilon * damping / (1.0 - damping)


class IncrementalPageRank:
    """Warm-started PageRank over mutation batches.

    ``rank`` converges to the paper's L1 criterion on every snapshot;
    ``iterations`` is the sweep count of the last update (the warm
    start's entire saving -- the per-sweep cost is unchanged).
    """

    def __init__(self, graph: CSRGraph,
                 damping: float = DEFAULT_DAMPING,
                 epsilon: float = DEFAULT_EPSILON,
                 max_iterations: int = DEFAULT_MAX_ITERATIONS):
        self.damping = damping
        self.epsilon = epsilon
        self.max_iterations = max_iterations
        self.rank, self.iterations = pagerank(
            graph, damping=damping, epsilon=epsilon,
            max_iterations=max_iterations)
        self.graph = graph

    def update(self, graph: CSRGraph,
               applied: AppliedBatch | None = None) -> int:
        """Re-converge on the post-batch snapshot; returns iterations.

        ``applied`` is accepted for interface symmetry; the warm start
        uses only the previous vector (rank mass moves globally, so
        there is no affected-region shortcut that keeps the contract).
        """
        self.rank, self.iterations = pagerank_warm(
            graph, self.rank, damping=self.damping,
            epsilon=self.epsilon, max_iterations=self.max_iterations)
        self.graph = graph
        return self.iterations
