"""Reference k-core decomposition.

The core number of a vertex is the largest ``k`` such that the vertex
belongs to a maximal subgraph of minimum degree ``k`` (Matula-Beck).
Defined on the simple undirected view (:mod:`repro.graph.simple`):
self-loops dropped, duplicate edges counted once -- the convention every
system implementation shares, so core numbers (which are mathematically
unique) compare exactly across systems.

Two implementations live here on purpose.  :func:`core_numbers` drives
the peel with the shared :class:`~repro.graph.frontier.BucketQueue`
(decrease-key by re-push, stale entries filtered on pop), touching only
the neighborhoods of peeled vertices per round.  The deliberately slow
:func:`core_numbers_naive` re-scans the full adjacency every
sub-round; ``benchmarks/bench_algorithms.py`` holds the queue-driven
peel to a >=2x advantage over it, and the hypothesis suite holds the
two to exact agreement.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.frontier import BucketQueue
from repro.graph.simple import SimpleView, simple_undirected_view

__all__ = ["core_numbers", "core_numbers_naive", "peel_cores"]


def peel_cores(view: SimpleView) -> np.ndarray:
    """Bucket-queue peel of an already-simplified view.

    Batch-popping a whole minimum bucket equals vertex-at-a-time
    Matula-Beck: every member has residual degree <= the current level
    (degrees are clamped at the level below), so any removal order
    inside the batch assigns the same core number.
    """
    n = view.n
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core
    deg = view.degrees.copy()
    key = deg.copy()
    queue = BucketQueue()
    queue.push(np.arange(n, dtype=np.int64), key)
    level = 0
    while True:
        head = queue.pop(key)
        if head is None:
            break
        k, members = head
        level = max(level, k)
        core[members] = level
        key[members] = -1  # peeled; every queued entry is now stale
        nbrs = view.neighbors_of(members)
        nbrs = nbrs[key[nbrs] >= 0]
        if nbrs.size == 0:
            continue
        # O(a log a) in the touched neighborhood -- never O(n)/round.
        ids, cnt = np.unique(nbrs, return_counts=True)
        new_deg = np.maximum(deg[ids] - cnt, level)
        deg[ids] = new_deg
        key[ids] = new_deg
        queue.push(ids, new_deg)
    return core


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """Core number per vertex of the simple undirected view."""
    view = simple_undirected_view(
        graph.source_ids(), graph.col_idx, graph.n_vertices)
    return peel_cores(view)


def core_numbers_naive(graph: CSRGraph) -> np.ndarray:
    """Re-scan peeling baseline (the level-synchronous recount shape).

    Each sub-round *re-scans the full adjacency* to recount every
    vertex's alive-neighbor degree -- the ``O(m)``-per-sub-round shape
    the matrix-based systems execute (GraphMat's ``kcore_spmv`` is a
    full SpMV recount per level, GraphBIG sweeps every property) --
    then peels by an ``O(n)`` scan.  No incremental decrements, no
    queue: correct, and the benchmark's foil.
    """
    view = simple_undirected_view(
        graph.source_ids(), graph.col_idx, graph.n_vertices)
    n = view.n
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core
    alive = np.ones(n, dtype=bool)
    remaining = n
    level = 0
    while remaining:
        # Re-scan: residual degree = alive neighbors, counted from
        # scratch over the whole edge array.
        nbr_alive = alive[view.indices].astype(np.int64)
        sums = np.concatenate(([0], np.cumsum(nbr_alive)))
        deg = sums[view.indptr[1:]] - sums[view.indptr[:-1]]
        level = max(level, int(deg[alive].min()))
        peel = np.flatnonzero(alive & (deg <= level))
        core[peel] = level
        alive[peel] = False
        remaining -= int(peel.size)
    return core
