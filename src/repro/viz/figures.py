"""One SVG renderer per paper figure.

``render_figure(analysis, "fig2", out_dir)`` writes the SVG(s) for one
figure from an :class:`~repro.core.analysis.Analysis`;
``render_all_figures`` sweeps whatever figures the record set supports.
Figures 5/6 accept either measured analyses (with thread sweeps) or the
full-scale projection tables.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.analysis import Analysis
from repro.errors import ConfigError
from repro.viz.charts import bar_chart, box_plot, line_chart

__all__ = ["render_figure", "render_all_figures", "FIGURES"]

FIGURES = ("fig2", "fig3", "fig4", "fig5", "fig6", "fig8", "fig9")


def _times_box(analysis: Analysis, algorithm: str):
    return {k[0]: v for k, v in analysis.box("time").items()
            if k[1] == algorithm}


def _fig_time_and_build(analysis, algorithm, fig, out_dir, titles):
    paths = []
    times = _times_box(analysis, algorithm)
    if not times:
        raise ConfigError(f"no {algorithm} records for {fig}")
    paths.append(box_plot(times, titles[0]).write(
        Path(out_dir) / f"{fig}-time.svg"))
    builds = {k[0]: v for k, v in
              analysis.construction_box(algorithm).items()}
    if builds:
        paths.append(box_plot(builds, titles[1]).write(
            Path(out_dir) / f"{fig}-construction.svg"))
    return paths


def render_figure(analysis: Analysis, figure: str,
                  out_dir: str | Path) -> list[Path]:
    """Write one figure's SVG file(s); returns the paths."""
    out_dir = Path(out_dir)
    if figure == "fig2":
        return _fig_time_and_build(
            analysis, "bfs", "fig2", out_dir,
            ("BFS Time", "BFS Data Structure Construction"))
    if figure == "fig3":
        return _fig_time_and_build(
            analysis, "sssp", "fig3", out_dir,
            ("SSSP Time", "SSSP Data Structure Construction"))
    if figure == "fig4":
        times = _times_box(analysis, "pagerank")
        if not times:
            raise ConfigError("no pagerank records for fig4")
        paths = [box_plot(times, "PageRank Time").write(
            out_dir / "fig4-time.svg")]
        iters = analysis.iterations("pagerank")
        if iters:
            names = sorted(iters)
            paths.append(bar_chart(
                names, {"iterations": [iters[n] for n in names]},
                "PageRank Iterations", "Iterations").write(
                out_dir / "fig4-iterations.svg"))
        return paths
    if figure in ("fig5", "fig6"):
        threads = analysis.thread_counts()
        if len(threads) < 2:
            raise ConfigError("figs 5/6 need a thread sweep")
        series = {}
        for system in analysis.systems():
            try:
                tab = analysis.scalability(system, "bfs")
            except ConfigError:
                continue
            series[system] = (tab.speedup() if figure == "fig5"
                              else tab.efficiency())
        if figure == "fig5":
            chart = line_chart(
                [float(t) for t in threads], series, "BFS Speedup",
                "Threads", "Speedup", log_x=True, log_y=True,
                ideal=[float(t) for t in threads])
            return [chart.write(out_dir / "fig5-speedup.svg")]
        chart = line_chart(
            [float(t) for t in threads], series,
            "BFS Parallel Efficiency", "Threads", "T1/(n Tn)",
            log_x=True, ideal=[1.0] * len(threads))
        return [chart.write(out_dir / "fig6-efficiency.svg")]
    if figure == "fig8":
        datasets = analysis.datasets()
        algos = [a for a in ("bfs", "pagerank", "sssp")
                 if a in analysis.algorithms()]
        if not algos:
            raise ConfigError("no fig8-relevant records")
        paths = []
        for algo in algos:
            series = {}
            for system in analysis.systems():
                vals = []
                for ds in datasets:
                    try:
                        vals.append(analysis.mean_time(system, algo, ds))
                    except ConfigError:
                        vals.append(None)
                if any(v is not None for v in vals):
                    series[system] = vals
            paths.append(bar_chart(
                datasets, series, f"Mean {algo} time", "Time (s)").write(
                out_dir / f"fig8-{algo}.svg"))
        return paths
    if figure == "fig9":
        paths = []
        for metric, label, base in (
                ("dram_watts", "RAM Power Consumption During BFS",
                 analysis.machine.idle_dram_watts),
                ("pkg_watts", "CPU Average Power Consumption During BFS",
                 analysis.machine.idle_pkg_watts)):
            boxes = analysis.power_box(metric, "bfs")
            if not boxes:
                raise ConfigError("no power records for fig9")
            paths.append(box_plot(
                boxes, label, y_label="Average Power (Watts)",
                log_y=False, baseline=base,
                baseline_label="sleep").write(
                out_dir / f"fig9-{metric}.svg"))
        return paths
    raise ConfigError(f"unknown figure {figure!r}")


def render_all_figures(analysis: Analysis, out_dir: str | Path
                       ) -> dict[str, list[Path]]:
    """Render every figure the record set has data for."""
    out: dict[str, list[Path]] = {}
    for fig in FIGURES:
        try:
            out[fig] = render_figure(analysis, fig, out_dir)
        except (ConfigError, ValueError):
            continue
    return out
