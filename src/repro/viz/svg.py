"""Minimal SVG document builder.

Just enough vector drawing for the paper's figures: rectangles, lines,
polylines, circles, and text, with proper XML escaping and a fluent
canvas that tracks its own size.  No third-party dependencies.
"""

from __future__ import annotations

import math
from pathlib import Path
from xml.sax.saxutils import escape, quoteattr

__all__ = ["SvgCanvas", "nice_ticks", "log_ticks"]


class SvgCanvas:
    """An SVG document accumulated as a list of elements."""

    def __init__(self, width: float, height: float,
                 background: str = "white"):
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = float(width)
        self.height = float(height)
        self._elements: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # ------------------------------------------------------------------
    @staticmethod
    def _fmt(v: float) -> str:
        return f"{v:.2f}".rstrip("0").rstrip(".")

    def _attrs(self, **kwargs) -> str:
        parts = []
        for key, value in kwargs.items():
            if value is None:
                continue
            name = key.replace("_", "-")
            parts.append(f"{name}={quoteattr(str(value))}")
        return " ".join(parts)

    # ------------------------------------------------------------------
    def rect(self, x: float, y: float, w: float, h: float,
             fill: str = "none", stroke: str = "black",
             stroke_width: float = 1.0, opacity: float | None = None,
             title: str | None = None) -> "SvgCanvas":
        """``title`` adds a hover tooltip (``<title>`` child); its text
        is escaped here, so callers may pass raw span/dataset names."""
        open_tag = (
            f"<rect x={quoteattr(self._fmt(x))} y={quoteattr(self._fmt(y))} "
            f"width={quoteattr(self._fmt(max(w, 0)))} "
            f"height={quoteattr(self._fmt(max(h, 0)))} "
            + self._attrs(fill=fill, stroke=stroke,
                          stroke_width=stroke_width, opacity=opacity))
        if title is None:
            self._elements.append(open_tag + "/>")
        else:
            self._elements.append(
                open_tag + f"><title>{escape(title)}</title></rect>")
        return self

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "black", stroke_width: float = 1.0,
             dash: str | None = None) -> "SvgCanvas":
        self._elements.append(
            f"<line x1={quoteattr(self._fmt(x1))} "
            f"y1={quoteattr(self._fmt(y1))} "
            f"x2={quoteattr(self._fmt(x2))} "
            f"y2={quoteattr(self._fmt(y2))} "
            + self._attrs(stroke=stroke, stroke_width=stroke_width,
                          stroke_dasharray=dash)
            + "/>")
        return self

    def polyline(self, points: list[tuple[float, float]],
                 stroke: str = "black", stroke_width: float = 1.5
                 ) -> "SvgCanvas":
        pts = " ".join(f"{self._fmt(x)},{self._fmt(y)}"
                       for x, y in points)
        self._elements.append(
            f"<polyline points={quoteattr(pts)} fill=\"none\" "
            + self._attrs(stroke=stroke, stroke_width=stroke_width)
            + "/>")
        return self

    def circle(self, cx: float, cy: float, r: float,
               fill: str = "black", stroke: str = "none") -> "SvgCanvas":
        self._elements.append(
            f"<circle cx={quoteattr(self._fmt(cx))} "
            f"cy={quoteattr(self._fmt(cy))} r={quoteattr(self._fmt(r))} "
            + self._attrs(fill=fill, stroke=stroke) + "/>")
        return self

    def text(self, x: float, y: float, content: str,
             size: float = 12.0, anchor: str = "start",
             fill: str = "black", rotate: float | None = None,
             family: str = "sans-serif") -> "SvgCanvas":
        transform = None
        if rotate is not None:
            transform = (f"rotate({self._fmt(rotate)} "
                         f"{self._fmt(x)} {self._fmt(y)})")
        self._elements.append(
            f"<text x={quoteattr(self._fmt(x))} "
            f"y={quoteattr(self._fmt(y))} "
            + self._attrs(font_size=self._fmt(size), text_anchor=anchor,
                          fill=fill, font_family=family,
                          transform=transform)
            + f">{escape(content)}</text>")
        return self

    # ------------------------------------------------------------------
    def to_string(self) -> str:
        body = "\n  ".join(self._elements)
        return (
            '<?xml version="1.0" encoding="UTF-8"?>\n'
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self._fmt(self.width)}" '
            f'height="{self._fmt(self.height)}" '
            f'viewBox="0 0 {self._fmt(self.width)} '
            f'{self._fmt(self.height)}">\n  '
            + body + "\n</svg>\n")

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_string(), encoding="utf-8")
        return path


# ----------------------------------------------------------------------
# Tick helpers
# ----------------------------------------------------------------------
def nice_ticks(lo: float, hi: float, target: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi] (linear axes)."""
    if hi <= lo:
        hi = lo + 1.0
    raw_step = (hi - lo) / max(target, 1)
    mag = 10.0 ** math.floor(math.log10(raw_step))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mult * mag
        if step >= raw_step:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-12 * step:
        ticks.append(round(t, 12))
        t += step
    return ticks


def log_ticks(lo: float, hi: float) -> list[float]:
    """Decade ticks covering [lo, hi] (log axes, positive values)."""
    if lo <= 0 or hi <= 0:
        raise ValueError("log axes need positive bounds")
    ticks = []
    e = math.floor(math.log10(lo))
    while 10.0 ** e <= hi * (1 + 1e-12):
        t = 10.0 ** e
        if t >= lo * (1 - 1e-12):
            ticks.append(t)
        e += 1
    if not ticks:
        ticks = [lo, hi]
    return ticks
