"""Performance visualization: the ``*`` = "performance visualizer".

The paper's phase 5 renders box plots and scaling curves with R; this
package renders the same figures as standalone SVG files with no
plotting dependency -- a pure-Python SVG writer
(:mod:`~repro.viz.svg`), chart primitives (:mod:`~repro.viz.charts`:
box plots with log axes, line charts, grouped bars), and one
ready-made renderer per paper figure (:mod:`~repro.viz.figures`).

Usage::

    from repro.viz import render_all_figures
    render_all_figures(analysis, "figures/")
"""

from repro.viz.charts import bar_chart, box_plot, line_chart
from repro.viz.figures import render_all_figures, render_figure
from repro.viz.svg import SvgCanvas

__all__ = ["SvgCanvas", "box_plot", "line_chart", "bar_chart",
           "render_figure", "render_all_figures"]
