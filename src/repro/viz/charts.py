"""Chart primitives: box plots, line charts, grouped bars.

These mirror the paper's R plots: log-scale box plots with outlier
dots (Figs 2-4, 9), log-log line charts with per-series markers
(Figs 5-6), and grouped bar panels (Figs 4-right, 8).
"""

from __future__ import annotations

import math

from repro.core.analysis import BoxStats
from repro.viz.svg import SvgCanvas, log_ticks, nice_ticks

__all__ = ["box_plot", "line_chart", "bar_chart", "SERIES_COLORS"]

#: Color cycle (stable mapping of system -> color across all figures).
SERIES_COLORS = ("#1b6ca8", "#c23b22", "#2c8a4b", "#8a5ac2", "#c2852c",
                 "#4bb4c2")

_MARGIN = dict(left=70.0, right=20.0, top=40.0, bottom=55.0)


class _Scale:
    """Data -> pixel mapping, linear or log10."""

    def __init__(self, lo: float, hi: float, px_lo: float, px_hi: float,
                 log: bool = False):
        if log and (lo <= 0 or hi <= 0):
            raise ValueError("log scale needs positive data")
        if hi <= lo:
            hi = lo * 1.01 + 1e-12 if log else lo + 1.0
        self.lo, self.hi, self.log = lo, hi, log
        self.px_lo, self.px_hi = px_lo, px_hi

    def __call__(self, v: float) -> float:
        if self.log:
            f = (math.log10(v) - math.log10(self.lo)) / (
                math.log10(self.hi) - math.log10(self.lo))
        else:
            f = (v - self.lo) / (self.hi - self.lo)
        return self.px_lo + f * (self.px_hi - self.px_lo)

    def ticks(self) -> list[float]:
        return (log_ticks(self.lo, self.hi) if self.log
                else nice_ticks(self.lo, self.hi))


def _tick_label(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.0e}"
    return f"{v:g}"


def _frame(canvas: SvgCanvas, title: str, x0, y0, x1, y1) -> None:
    canvas.text(canvas.width / 2, 22, title, size=14, anchor="middle")
    canvas.rect(x0, y0, x1 - x0, y1 - y0, fill="none",
                stroke="#444444")


def box_plot(boxes: dict[str, BoxStats], title: str,
             y_label: str = "Time (seconds)", log_y: bool = True,
             width: float = 520.0, height: float = 360.0,
             baseline: float | None = None,
             baseline_label: str = "sleep") -> SvgCanvas:
    """Paper-style box plot: one box per group, log y-axis, whiskers to
    min/max, optional horizontal baseline (Fig 9's sleep line)."""
    if not boxes:
        raise ValueError("nothing to plot")
    canvas = SvgCanvas(width, height)
    x0, y0 = _MARGIN["left"], _MARGIN["top"]
    x1, y1 = width - _MARGIN["right"], height - _MARGIN["bottom"]
    _frame(canvas, title, x0, y0, x1, y1)

    values = [v for b in boxes.values()
              for v in (b.minimum, b.maximum)]
    if baseline is not None:
        values.append(baseline)
    lo, hi = min(values), max(values)
    if log_y:
        lo = max(lo, 1e-12)
    pad = 1.25 if log_y else 0.08 * (hi - lo or 1.0)
    scale = _Scale(lo / pad if log_y else lo - pad,
                   hi * pad if log_y else hi + pad,
                   y1, y0, log=log_y)

    for t in scale.ticks():
        py = scale(t)
        canvas.line(x0, py, x1, py, stroke="#dddddd")
        canvas.text(x0 - 6, py + 4, _tick_label(t), size=10,
                    anchor="end")
    canvas.text(16, (y0 + y1) / 2, y_label, size=12, anchor="middle",
                rotate=-90)

    groups = sorted(boxes)
    slot = (x1 - x0) / len(groups)
    bw = min(slot * 0.5, 60.0)
    for i, name in enumerate(groups):
        b = boxes[name]
        cx = x0 + slot * (i + 0.5)
        color = SERIES_COLORS[i % len(SERIES_COLORS)]
        # whiskers
        canvas.line(cx, scale(b.minimum), cx, scale(b.q1),
                    stroke="#555555")
        canvas.line(cx, scale(b.q3), cx, scale(b.maximum),
                    stroke="#555555")
        for v in (b.minimum, b.maximum):
            canvas.line(cx - bw / 4, scale(v), cx + bw / 4, scale(v),
                        stroke="#555555")
        # box
        canvas.rect(cx - bw / 2, scale(b.q3), bw,
                    abs(scale(b.q1) - scale(b.q3)), fill=color,
                    stroke="#333333", opacity=0.75)
        # median
        canvas.line(cx - bw / 2, scale(b.median), cx + bw / 2,
                    scale(b.median), stroke="black", stroke_width=2.0)
        # single-point groups (the Graph500) get a dot
        if b.n == 1:
            canvas.circle(cx, scale(b.median), 3.5, fill="black")
        canvas.text(cx, y1 + 18, name, size=11, anchor="middle")
        canvas.text(cx, y1 + 32, f"n={b.n}", size=9, anchor="middle",
                    fill="#777777")

    if baseline is not None:
        py = scale(baseline)
        canvas.line(x0, py, x1, py, stroke="#c23b22", dash="6,4")
        canvas.text(x1 - 4, py - 5, baseline_label, size=10,
                    anchor="end", fill="#c23b22")
    return canvas


def line_chart(xs: list[float], series: dict[str, list[float]],
               title: str, x_label: str, y_label: str,
               log_x: bool = False, log_y: bool = False,
               ideal: list[float] | None = None,
               width: float = 560.0, height: float = 380.0) -> SvgCanvas:
    """Figs 5-6: one polyline+markers per system, optional ideal line."""
    if not series or not xs:
        raise ValueError("nothing to plot")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
    canvas = SvgCanvas(width, height)
    x0, y0 = _MARGIN["left"], _MARGIN["top"]
    x1, y1 = width - _MARGIN["right"] - 90, height - _MARGIN["bottom"]
    _frame(canvas, title, x0, y0, x1, y1)

    all_y = [v for ys in series.values() for v in ys]
    if ideal is not None:
        all_y += list(ideal)
    sx = _Scale(min(xs), max(xs), x0, x1, log=log_x)
    pad = 1.2 if log_y else 0.08 * (max(all_y) - min(all_y) or 1.0)
    sy = _Scale((min(all_y) / pad) if log_y else min(all_y) - pad,
                (max(all_y) * pad) if log_y else max(all_y) + pad,
                y1, y0, log=log_y)

    for t in sy.ticks():
        py = sy(t)
        canvas.line(x0, py, x1, py, stroke="#dddddd")
        canvas.text(x0 - 6, py + 4, _tick_label(t), size=10, anchor="end")
    for t in (xs if log_x else sx.ticks()):
        px = sx(t)
        canvas.line(px, y1, px, y1 + 4, stroke="#444444")
        canvas.text(px, y1 + 18, _tick_label(t), size=10,
                    anchor="middle")
    canvas.text((x0 + x1) / 2, height - 12, x_label, size=12,
                anchor="middle")
    canvas.text(16, (y0 + y1) / 2, y_label, size=12, anchor="middle",
                rotate=-90)

    if ideal is not None:
        canvas.polyline([(sx(x), sy(y)) for x, y in zip(xs, ideal)],
                        stroke="black", stroke_width=1.0)
        canvas.text(sx(xs[-1]) - 4, sy(ideal[-1]) - 6, "ideal", size=10,
                    anchor="end")

    legend_y = y0 + 10
    for i, (name, ys) in enumerate(sorted(series.items())):
        color = SERIES_COLORS[i % len(SERIES_COLORS)]
        pts = [(sx(x), sy(y)) for x, y in zip(xs, ys)]
        canvas.polyline(pts, stroke=color)
        for px, py in pts:
            canvas.circle(px, py, 2.5, fill=color)
        canvas.line(x1 + 10, legend_y, x1 + 30, legend_y, stroke=color,
                    stroke_width=2.0)
        canvas.text(x1 + 35, legend_y + 4, name, size=11)
        legend_y += 18
    return canvas


def bar_chart(groups: list[str], series: dict[str, list[float]],
              title: str, y_label: str,
              width: float = 560.0, height: float = 360.0) -> SvgCanvas:
    """Grouped bars (Fig 4 right / Fig 8): one bar cluster per group,
    one colored bar per series; missing cells (None) are skipped."""
    if not groups or not series:
        raise ValueError("nothing to plot")
    canvas = SvgCanvas(width, height)
    x0, y0 = _MARGIN["left"], _MARGIN["top"]
    x1, y1 = width - _MARGIN["right"] - 90, height - _MARGIN["bottom"]
    _frame(canvas, title, x0, y0, x1, y1)

    values = [v for ys in series.values() for v in ys if v is not None]
    hi = max(values) if values else 1.0
    sy = _Scale(0.0, hi * 1.1, y1, y0)
    for t in sy.ticks():
        py = sy(t)
        canvas.line(x0, py, x1, py, stroke="#dddddd")
        canvas.text(x0 - 6, py + 4, _tick_label(t), size=10, anchor="end")
    canvas.text(16, (y0 + y1) / 2, y_label, size=12, anchor="middle",
                rotate=-90)

    names = sorted(series)
    slot = (x1 - x0) / len(groups)
    bar_w = min(slot * 0.8 / max(len(names), 1), 40.0)
    for gi, group in enumerate(groups):
        base = x0 + slot * gi + (slot - bar_w * len(names)) / 2
        for si, name in enumerate(names):
            v = series[name][gi]
            if v is None:
                continue
            color = SERIES_COLORS[si % len(SERIES_COLORS)]
            px = base + si * bar_w
            canvas.rect(px, sy(v), bar_w * 0.92, y1 - sy(v),
                        fill=color, stroke="#333333", opacity=0.85)
        canvas.text(x0 + slot * (gi + 0.5), y1 + 18, group, size=11,
                    anchor="middle")

    legend_y = y0 + 10
    for si, name in enumerate(names):
        color = SERIES_COLORS[si % len(SERIES_COLORS)]
        canvas.rect(x1 + 10, legend_y - 8, 14, 10, fill=color,
                    stroke="#333333")
        canvas.text(x1 + 30, legend_y, name, size=11)
        legend_y += 18
    return canvas
