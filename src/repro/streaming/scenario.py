"""Seeded event-stream scenarios over Kronecker graphs.

A scenario is one Graph500 Kronecker tuple list split into a *base*
graph (the first ``base_fraction`` of the generated tuples) plus a
sequence of mutation batches: each batch inserts the next
``batch_edges`` unseen tuples from the generator's tail and deletes a
seeded sample of *base* tuples.  Everything is a pure function of
:class:`StreamSpec`, so two runs of the same spec produce identical
streams -- the property the oracle checks, the suite section, and CI
smoke all rely on.

Deletes are drawn from the base tuples with replacement, so later
batches routinely re-delete an arc an earlier batch already removed:
the delete-of-absent no-op path is exercised by construction, not just
by unit tests.  Batches are symmetrized
(:meth:`~repro.graph.dynamic.MutationBatch.symmetrized`) because the
Kronecker list is undirected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.kronecker import KroneckerSpec, generate_kronecker
from repro.errors import ConfigError
from repro.graph.dynamic import MutationBatch

__all__ = ["StreamSpec", "StreamScenario", "build_scenario"]

#: Mixed into ``spec.seed`` for the delete sampler so delete positions
#: are independent of the generator's own draws.
_DELETE_SEED_SALT = 0x5EED


@dataclass(frozen=True)
class StreamSpec:
    """Parameters of one deterministic event stream."""

    scale: int
    n_batches: int = 8
    batch_edges: int = 64
    delete_fraction: float = 0.25
    base_fraction: float = 0.85
    seed: int = 20170402
    weighted: bool = False

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ConfigError("stream scale must be >= 1")
        if self.n_batches < 1:
            raise ConfigError("n_batches must be >= 1")
        if self.batch_edges < 1:
            raise ConfigError("batch_edges must be >= 1")
        if not 0.0 <= self.delete_fraction <= 1.0:
            raise ConfigError(
                f"delete_fraction must be in [0, 1], got "
                f"{self.delete_fraction}")
        if not 0.0 < self.base_fraction < 1.0:
            raise ConfigError(
                f"base_fraction must be in (0, 1), got "
                f"{self.base_fraction}")

    @property
    def deletes_per_batch(self) -> int:
        return int(round(self.batch_edges * self.delete_fraction))

    @property
    def name(self) -> str:
        return (f"stream-scale{self.scale}-b{self.n_batches}"
                f"x{self.batch_edges}")


@dataclass(frozen=True)
class StreamScenario:
    """One materialized stream: base batch + mutation batches.

    ``base`` and every entry of ``batches`` are already symmetrized;
    ``root`` is the highest-degree base vertex (deterministic argmax,
    so BFS/SSSP start inside the giant component).
    """

    spec: StreamSpec
    n_vertices: int
    root: int
    base: MutationBatch
    batches: tuple[MutationBatch, ...]


def build_scenario(spec: StreamSpec, cache=None) -> StreamScenario:
    """Materialize the event stream for ``spec``.

    Raises :class:`~repro.errors.ConfigError` when the generator's tail
    cannot supply ``n_batches * batch_edges`` insert tuples after the
    base split -- the spec asks for a longer stream than the scale
    yields, and silently shortening it would break determinism between
    differently-capable hosts.
    """
    kron = KroneckerSpec(scale=spec.scale, seed=spec.seed,
                         weighted=spec.weighted)
    edges = generate_kronecker(kron, cache=cache)
    m = edges.src.size
    n_base = int(m * spec.base_fraction)
    need = spec.n_batches * spec.batch_edges
    if m - n_base < need:
        raise ConfigError(
            f"stream needs {need} insert tuples after the base split "
            f"but scale {spec.scale} leaves only {m - n_base}; lower "
            f"n_batches/batch_edges or raise the scale")

    w = edges.weights
    base = MutationBatch(
        insert_src=edges.src[:n_base],
        insert_dst=edges.dst[:n_base],
        insert_weights=None if w is None else w[:n_base],
    ).symmetrized()

    rng = np.random.default_rng(spec.seed + _DELETE_SEED_SALT)
    batches = []
    for i in range(spec.n_batches):
        lo = n_base + i * spec.batch_edges
        hi = lo + spec.batch_edges
        pick = rng.integers(0, n_base, spec.deletes_per_batch)
        batches.append(MutationBatch(
            insert_src=edges.src[lo:hi],
            insert_dst=edges.dst[lo:hi],
            insert_weights=None if w is None else w[lo:hi],
            delete_src=edges.src[pick],
            delete_dst=edges.dst[pick],
        ).symmetrized())

    root = int(np.argmax(np.bincount(base.insert_src,
                                     minlength=edges.n_vertices)))
    return StreamScenario(spec=spec, n_vertices=edges.n_vertices,
                          root=root, base=base,
                          batches=tuple(batches))
