"""Streaming ingest scenarios: seeded event streams over dynamic graphs.

Builds deterministic insert/delete event streams out of the Kronecker
generator (:mod:`repro.streaming.scenario`) and replays them through the
dynamic graph + incremental kernels with tracing, metrics, and optional
from-scratch oracle checking (:mod:`repro.streaming.replay`).  The CLI
front-end is ``epg stream``; the differential performance gate is
``benchmarks/bench_stream.py``.  See ``docs/streaming.md``.
"""

from repro.streaming.replay import (
    BatchResult,
    StreamReplay,
    write_results_csv,
)
from repro.streaming.scenario import (
    StreamScenario,
    StreamSpec,
    build_scenario,
)

__all__ = [
    "StreamSpec",
    "StreamScenario",
    "build_scenario",
    "StreamReplay",
    "BatchResult",
    "write_results_csv",
]
