"""Replay an event stream through the incremental kernels.

:class:`StreamReplay` owns the dynamic graph and one incremental kernel
per requested algorithm, applies each batch, repairs, and (optionally)
checks every post-batch answer against the from-scratch oracle --
bit-identity for BFS/SSSP, the contraction bound for PageRank (see
``repro.algorithms.incremental``).  Every batch is a ``stream``-category
span in the run trace, and the replay maintains the ``epg_stream_*``
metric family:

=================================  =====================================
``epg_stream_batches_total``       batches applied
``epg_stream_arcs_inserted_total`` arcs newly present after a batch
``epg_stream_arcs_removed_total``  arcs actually deleted by a batch
``epg_stream_resettled_total``     vertices re-settled, labelled by
                                   ``algorithm`` (PageRank reports
                                   sweeps, its unit of repair work)
``epg_stream_checks_total``        oracle checks that passed
=================================  =====================================

All :class:`BatchResult` fields are deterministic counters -- no wall
times -- so the report section built from them stays byte-identical
across ``--jobs`` settings and hosts.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, fields

import numpy as np

from repro.algorithms.bfs import bfs_parents
from repro.algorithms.incremental import (
    IncrementalBFS,
    IncrementalPageRank,
    IncrementalSSSP,
    pagerank_l1_bound,
)
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import sssp_dijkstra
from repro.errors import ConfigError, ValidationError
from repro.observability.tracer import Tracer
from repro.streaming.scenario import StreamScenario

__all__ = ["BatchResult", "StreamReplay", "write_results_csv",
           "ALGORITHMS"]

#: Algorithms the replay knows how to keep incrementally repaired.
ALGORITHMS = ("bfs", "sssp", "pagerank")


@dataclass(frozen=True)
class BatchResult:
    """Deterministic per-batch counters (CSV row of the stream report).

    ``-1`` marks counters of algorithms the replay was not asked to
    run, so rows always have the full column set.
    """

    batch: int
    n_inserted: int          #: arcs newly present (post-dedup)
    n_updated: int           #: existing arcs whose weight changed
    n_removed: int           #: arcs the delete phase removed
    n_arcs: int              #: live arc count after the batch
    bfs_cut: int = -1
    bfs_orphaned: int = -1
    bfs_resettled: int = -1
    bfs_reached: int = -1
    sssp_cut: int = -1
    sssp_orphaned: int = -1
    sssp_resettled: int = -1
    sssp_reached: int = -1
    pagerank_sweeps: int = -1
    checked: int = 0         #: oracle checks that passed for this batch


class StreamReplay:
    """Drive one scenario end to end.

    Parameters
    ----------
    scenario:
        A :class:`~repro.streaming.scenario.StreamScenario`.
    algorithms:
        Subset of :data:`ALGORITHMS` to keep repaired.  ``sssp``
        requires a weighted scenario.
    tracer:
        Optional :class:`~repro.observability.tracer.Tracer`; the null
        tracer is used when omitted.
    check:
        Recompute the from-scratch oracle after every batch and raise
        :class:`~repro.errors.ValidationError` on any divergence.
    """

    def __init__(self, scenario: StreamScenario, *,
                 algorithms=ALGORITHMS, tracer: Tracer | None = None,
                 check: bool = False):
        unknown = [a for a in algorithms if a not in ALGORITHMS]
        if unknown:
            raise ConfigError(
                f"unknown stream algorithms {unknown}; "
                f"choose from {list(ALGORITHMS)}")
        if not algorithms:
            raise ConfigError("stream replay needs at least one algorithm")
        if "sssp" in algorithms and not scenario.spec.weighted:
            raise ConfigError(
                "sssp needs a weighted stream (pass weighted=True)")
        self.scenario = scenario
        self.algorithms = tuple(algorithms)
        self.tracer = tracer if tracer is not None else Tracer()
        self.check = bool(check)
        self.results: list[BatchResult] = []
        self._graph = None
        self._kernels: dict[str, object] = {}

    # ------------------------------------------------------------------
    def _init_base(self) -> None:
        from repro.graph.dynamic import DynamicGraph

        sc = self.scenario
        with self.tracer.span("stream:init", category="stream",
                              scale=sc.spec.scale, root=sc.root) as sp:
            self._graph = DynamicGraph(sc.n_vertices,
                                       weighted=sc.spec.weighted)
            self._graph.apply(sc.base)
            snap = self._graph.snapshot()
            if "bfs" in self.algorithms:
                self._kernels["bfs"] = IncrementalBFS(snap, sc.root)
            if "sssp" in self.algorithms:
                self._kernels["sssp"] = IncrementalSSSP(snap, sc.root)
            if "pagerank" in self.algorithms:
                self._kernels["pagerank"] = IncrementalPageRank(snap)
            sp.set(n_arcs=self._graph.n_arcs)

    def _check_batch(self, snap, index: int) -> int:
        """Oracle-check every kernel; returns the number of checks."""
        checked = 0
        if "bfs" in self._kernels:
            k = self._kernels["bfs"]
            p_ref, l_ref = bfs_parents(snap, self.scenario.root)
            if (k.level.tobytes() != l_ref.tobytes()
                    or k.parent.tobytes() != p_ref.tobytes()):
                raise ValidationError(
                    f"batch[{index}]: incremental BFS diverged from "
                    f"the from-scratch oracle")
            checked += 1
        if "sssp" in self._kernels:
            k = self._kernels["sssp"]
            d_ref = sssp_dijkstra(snap, self.scenario.root)
            if k.dist.tobytes() != d_ref.tobytes():
                raise ValidationError(
                    f"batch[{index}]: incremental SSSP diverged from "
                    f"the from-scratch oracle")
            checked += 1
        if "pagerank" in self._kernels:
            k = self._kernels["pagerank"]
            r_ref, _ = pagerank(snap, damping=k.damping,
                                epsilon=k.epsilon,
                                max_iterations=k.max_iterations)
            l1 = float(np.abs(k.rank - r_ref).sum())
            bound = pagerank_l1_bound(k.damping, k.epsilon)
            if l1 > bound:
                raise ValidationError(
                    f"batch[{index}]: warm PageRank is {l1:.3e} (L1) "
                    f"from the cold result, beyond the contraction "
                    f"bound {bound:.3e}")
            checked += 1
        if checked:
            self.tracer.counter("epg_stream_checks_total", checked)
        return checked

    def run(self) -> list[BatchResult]:
        """Replay every batch; returns (and stores) the per-batch rows."""
        sc = self.scenario
        t = self.tracer
        with t.span("stream", category="stream", scale=sc.spec.scale,
                    n_batches=len(sc.batches),
                    algorithms=",".join(self.algorithms)):
            self._init_base()
            for i, batch in enumerate(sc.batches):
                with t.span(f"batch[{i}]", category="stream",
                            n_inserts=batch.n_inserts,
                            n_deletes=batch.n_deletes) as sp:
                    applied = self._graph.apply(batch)
                    snap = self._graph.snapshot()
                    counters: dict[str, int] = {}
                    for name in self.algorithms:
                        kernel = self._kernels[name]
                        if name == "pagerank":
                            sweeps = kernel.update(snap, applied)
                            counters["pagerank_sweeps"] = sweeps
                            t.counter("epg_stream_resettled_total",
                                      sweeps, algorithm=name)
                            continue
                        stats = kernel.update(snap, applied)
                        counters[f"{name}_cut"] = stats.n_cut
                        counters[f"{name}_orphaned"] = stats.n_orphaned
                        counters[f"{name}_resettled"] = stats.n_resettled
                        reached = (int((kernel.level >= 0).sum())
                                   if name == "bfs" else
                                   int(np.isfinite(kernel.dist).sum()))
                        counters[f"{name}_reached"] = reached
                        t.counter("epg_stream_resettled_total",
                                  stats.n_resettled, algorithm=name)
                    checked = self._check_batch(snap, i) if self.check \
                        else 0
                    t.counter("epg_stream_batches_total")
                    t.counter("epg_stream_arcs_inserted_total",
                              applied.n_new)
                    t.counter("epg_stream_arcs_removed_total",
                              applied.n_deleted)
                    row = BatchResult(
                        batch=i, n_inserted=applied.n_new,
                        n_updated=applied.n_updated,
                        n_removed=applied.n_deleted,
                        n_arcs=self._graph.n_arcs,
                        checked=checked, **counters)
                    sp.set(n_arcs=row.n_arcs, checked=checked)
                    self.results.append(row)
        return self.results


def write_results_csv(results, path) -> None:
    """Write the per-batch counter rows as CSV.

    Named ``stream_results.csv`` by its callers -- deliberately not
    ``results.csv``, which the cache-equivalence CI glob treats as a
    priced-timeline artifact (stream rows are counters, not timings).
    """
    cols = [f.name for f in fields(BatchResult)]
    buf = io.StringIO()
    buf.write(",".join(cols) + "\n")
    for row in results:
        buf.write(",".join(str(getattr(row, c)) for c in cols) + "\n")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(buf.getvalue())
