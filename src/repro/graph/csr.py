"""Compressed sparse row adjacency.

CSR is the representation the paper reports for the Graph500, GAP, and
GraphBIG (Sec. III-C); PowerGraph layers a vertex-cut scheme on top of it
and GraphMat doubly-compresses it (:mod:`repro.graph.dcsr`).

Construction is fully vectorized: a counting sort over ``src`` via
``np.bincount``/``cumsum`` plus a stable ``argsort`` for the column
order, which mirrors what the C systems do (bucket by row, then place).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """Adjacency in compressed sparse row form.

    Attributes
    ----------
    row_ptr:
        ``int64[n + 1]``; neighbors of ``v`` live in
        ``col_idx[row_ptr[v]:row_ptr[v+1]]``.
    col_idx:
        ``int64[nnz]`` neighbor ids, sorted within each row.
    weights:
        Optional ``float64[nnz]`` aligned with ``col_idx``.
    """

    row_ptr: np.ndarray
    col_idx: np.ndarray
    weights: np.ndarray | None = None

    #: Derived-structure caches (set lazily via ``object.__setattr__``;
    #: not dataclass fields, dropped from pickles).
    _MEMO_ATTRS = ("_source_ids", "_transposed")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_arrays(src: np.ndarray, dst: np.ndarray, n: int,
                    weights: np.ndarray | None = None) -> "CSRGraph":
        """Build CSR from parallel endpoint arrays (counting sort).

        Endpoints are validated against ``[0, n)`` first: an id ``>= n``
        used to surface as a raw NumPy shape error out of the
        ``bincount``/``cumsum`` pair, and a *negative* id silently
        corrupted the counting sort (``bincount`` rejects it only
        sometimes, and ``row_ptr`` went inconsistent).  Mutation batches
        arriving from event streams make this path load-bearing.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        for name, arr in (("src", src), ("dst", dst)):
            if arr.size:
                bad = (arr < 0) | (arr >= n)
                if bad.any():
                    i = int(np.argmax(bad))
                    raise GraphFormatError(
                        f"{name}[{i}] = {int(arr[i])}: vertex id out of "
                        f"range [0, {n})")
        counts = np.bincount(src, minlength=n)
        row_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        # Stable sort by (src, dst) gives per-row sorted neighbor lists.
        order = np.lexsort((dst, src))
        col_idx = np.ascontiguousarray(dst[order])
        w = None
        if weights is not None:
            w = np.ascontiguousarray(
                np.asarray(weights, dtype=np.float64)[order])
        return CSRGraph(row_ptr=row_ptr, col_idx=col_idx, weights=w)

    @staticmethod
    def from_edge_list(edges: EdgeList, symmetrize: bool = False) -> "CSRGraph":
        """Build CSR from an :class:`EdgeList`.

        ``symmetrize=True`` inserts both directions of every tuple, which
        is how the shared-memory systems materialize undirected inputs.
        """
        el = edges.symmetrized() if symmetrize else edges
        return CSRGraph.from_arrays(
            el.src, el.dst, el.n_vertices, weights=el.weights)

    def __post_init__(self) -> None:
        rp = np.ascontiguousarray(self.row_ptr, dtype=np.int64)
        ci = np.ascontiguousarray(self.col_idx, dtype=np.int64)
        object.__setattr__(self, "row_ptr", rp)
        object.__setattr__(self, "col_idx", ci)
        if rp.ndim != 1 or rp.size < 1:
            raise GraphFormatError("row_ptr must be a non-empty 1-D array")
        if rp[0] != 0 or rp[-1] != ci.size:
            raise GraphFormatError("row_ptr must start at 0 and end at nnz")
        if np.any(np.diff(rp) < 0):
            raise GraphFormatError("row_ptr must be non-decreasing")
        if self.weights is not None:
            w = np.ascontiguousarray(self.weights, dtype=np.float64)
            object.__setattr__(self, "weights", w)
            if w.shape != ci.shape:
                raise GraphFormatError("weights must align with col_idx")

    def __getstate__(self) -> dict:
        """Pickle only the defining arrays, never the memo caches
        (workers rebuild them lazily; shipping them would double the
        payload)."""
        return {k: v for k, v in self.__dict__.items()
                if k not in self._MEMO_ATTRS}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Serialization (repro.cache array bundles)
    # ------------------------------------------------------------------
    def to_arrays_map(self, prefix: str = "") -> dict:
        """Flat ``{name: array}`` map for the artifact cache; several
        CSRs can share one bundle via distinct prefixes."""
        out = {f"{prefix}row_ptr": self.row_ptr,
               f"{prefix}col_idx": self.col_idx}
        if self.weights is not None:
            out[f"{prefix}weights"] = self.weights
        return out

    @staticmethod
    def from_arrays_map(arrays: dict, prefix: str = "") -> "CSRGraph":
        """Inverse of :meth:`to_arrays_map`.  Memmap-backed arrays pass
        through unchanged (``ascontiguousarray`` is a no-op on them),
        so a cache-restored CSR stays zero-copy."""
        return CSRGraph(row_ptr=arrays[f"{prefix}row_ptr"],
                        col_idx=arrays[f"{prefix}col_idx"],
                        weights=arrays.get(f"{prefix}weights"))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self.row_ptr.size - 1

    @property
    def n_edges(self) -> int:
        """Number of stored (directed) arcs."""
        return int(self.col_idx.size)

    @property
    def weighted(self) -> bool:
        return self.weights is not None

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.row_ptr)

    def in_degrees(self) -> np.ndarray:
        return np.bincount(self.col_idx, minlength=self.n_vertices)

    def neighbors(self, v: int) -> np.ndarray:
        """View (not copy) of ``v``'s neighbor list."""
        return self.col_idx[self.row_ptr[v]:self.row_ptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        if self.weights is None:
            raise GraphFormatError("graph is unweighted")
        return self.weights[self.row_ptr[v]:self.row_ptr[v + 1]]

    def nbytes(self) -> int:
        total = self.row_ptr.nbytes + self.col_idx.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def transposed(self) -> "CSRGraph":
        """CSR of the reverse graph (i.e. CSC of this one), memoized.

        Direction-optimizing BFS and pull-style PageRank need incoming
        adjacency; GAP builds and stores both directions.  Systems that
        used to rebuild the transpose per kernel now share one copy per
        graph instance.
        """
        cached = self.__dict__.get("_transposed")
        if cached is None:
            n = self.n_vertices
            src = self.source_ids()
            cached = CSRGraph.from_arrays(self.col_idx, src, n,
                                          weights=self.weights)
            object.__setattr__(self, "_transposed", cached)
        return cached

    def source_ids(self) -> np.ndarray:
        """Expand ``row_ptr`` back into a per-arc source array.

        Memoized and returned read-only: PageRank sweeps, CDLP rounds,
        and WCC all ask for it repeatedly, and before memoization each
        request re-ran the ``np.repeat`` expansion over every arc.
        """
        cached = self.__dict__.get("_source_ids")
        if cached is None:
            cached = np.repeat(
                np.arange(self.n_vertices, dtype=np.int64),
                self.out_degrees())
            cached.setflags(write=False)
            object.__setattr__(self, "_source_ids", cached)
        return cached

    def to_edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self.source_ids(), self.col_idx.copy()

    def to_scipy(self):
        """Export as ``scipy.sparse.csr_matrix`` (weights default to 1).

        Indices stay ``int64``: the old ``int32`` cast silently wrapped
        column ids past 2^31, corrupting the matrix on graphs with more
        than ~2.1e9 vertices or arcs instead of failing.  scipy picks a
        safe index dtype itself (downcasting only when the values fit);
        ``copy=True`` keeps the export from aliasing -- and its callers
        from mutating -- the graph's own arrays.
        """
        import scipy.sparse as sp

        data = (self.weights if self.weights is not None
                else np.ones(self.n_edges, dtype=np.float64))
        n = self.n_vertices
        return sp.csr_matrix(
            (data, self.col_idx, self.row_ptr), shape=(n, n), copy=True)

    def has_arc(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.size and nbrs[i] == v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(n={self.n_vertices}, arcs={self.n_edges}, "
            f"weighted={self.weighted})"
        )
