"""Doubly-compressed sparse row (DCSR), GraphMat's storage scheme.

The paper (Sec. III-C) notes GraphMat "uses a doubly-compressed sparse
row representation": on top of CSR's row compression, rows that are
entirely empty are removed, leaving an index of non-empty row ids.  On
hyper-sparse matrices (scale-free graphs have many zero-in-degree
vertices) this saves memory and lets SpMV skip empty rows, at the cost
of an extra indirection per row -- the structural source of GraphMat's
overhead on small graphs that Sec. IV-A observes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = ["DCSRMatrix"]


@dataclass(frozen=True)
class DCSRMatrix:
    """A sparse boolean/weighted matrix with compressed row index.

    Attributes
    ----------
    n:
        Matrix dimension (always square here: adjacency matrices).
    row_ids:
        ``int64[nzr]`` sorted ids of rows that contain at least one entry.
    row_ptr:
        ``int64[nzr + 1]`` offsets into ``col_idx`` for each *stored* row.
    col_idx:
        ``int64[nnz]`` column indices, sorted within each row.
    values:
        Optional ``float64[nnz]`` entries; ``None`` means pattern-only.
    """

    n: int
    row_ids: np.ndarray
    row_ptr: np.ndarray
    col_idx: np.ndarray
    values: np.ndarray | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "row_ids", np.ascontiguousarray(self.row_ids, np.int64))
        object.__setattr__(
            self, "row_ptr", np.ascontiguousarray(self.row_ptr, np.int64))
        object.__setattr__(
            self, "col_idx", np.ascontiguousarray(self.col_idx, np.int64))
        if self.row_ids.size + 1 != self.row_ptr.size:
            raise GraphFormatError("row_ptr must have len(row_ids) + 1 entries")
        if self.row_ptr.size and (
                self.row_ptr[0] != 0 or self.row_ptr[-1] != self.col_idx.size):
            raise GraphFormatError("row_ptr bounds do not match nnz")
        if np.any(np.diff(self.row_ptr) <= 0):
            # Doubly-compressed: *every* stored row must be non-empty.
            raise GraphFormatError("DCSR may not store empty rows")
        if self.row_ids.size and (
                np.any(np.diff(self.row_ids) <= 0)
                or self.row_ids[0] < 0 or self.row_ids[-1] >= self.n):
            raise GraphFormatError("row_ids must be sorted, unique, in range")
        if self.values is not None:
            v = np.ascontiguousarray(self.values, np.float64)
            object.__setattr__(self, "values", v)
            if v.shape != self.col_idx.shape:
                raise GraphFormatError("values must align with col_idx")

    # ------------------------------------------------------------------
    @staticmethod
    def from_csr(csr: CSRGraph) -> "DCSRMatrix":
        """Compress away the empty rows of a CSR adjacency."""
        deg = csr.out_degrees()
        row_ids = np.flatnonzero(deg > 0).astype(np.int64)
        row_ptr = np.zeros(row_ids.size + 1, dtype=np.int64)
        np.cumsum(deg[row_ids], out=row_ptr[1:])
        return DCSRMatrix(
            n=csr.n_vertices,
            row_ids=row_ids,
            row_ptr=row_ptr,
            col_idx=csr.col_idx.copy(),
            values=None if csr.weights is None else csr.weights.copy(),
        )

    def to_csr(self) -> CSRGraph:
        """Expand back to plain CSR (inverse of :meth:`from_csr`)."""
        deg = np.zeros(self.n, dtype=np.int64)
        deg[self.row_ids] = np.diff(self.row_ptr)
        row_ptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(deg, out=row_ptr[1:])
        return CSRGraph(row_ptr=row_ptr, col_idx=self.col_idx.copy(),
                        weights=None if self.values is None
                        else self.values.copy())

    # ------------------------------------------------------------------
    # Serialization (repro.cache array bundles)
    # ------------------------------------------------------------------
    def to_arrays_map(self, prefix: str = "") -> dict:
        """Flat ``{name: array}`` map for the artifact cache; ``n`` is
        a scalar and travels in the entry's metadata instead."""
        out = {f"{prefix}row_ids": self.row_ids,
               f"{prefix}row_ptr": self.row_ptr,
               f"{prefix}col_idx": self.col_idx}
        if self.values is not None:
            out[f"{prefix}values"] = self.values
        return out

    @staticmethod
    def from_arrays_map(arrays: dict, n: int,
                        prefix: str = "") -> "DCSRMatrix":
        """Inverse of :meth:`to_arrays_map`; memmap arrays stay mmapped."""
        return DCSRMatrix(n=int(n),
                          row_ids=arrays[f"{prefix}row_ids"],
                          row_ptr=arrays[f"{prefix}row_ptr"],
                          col_idx=arrays[f"{prefix}col_idx"],
                          values=arrays.get(f"{prefix}values"))

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.col_idx.size)

    @property
    def n_nonempty_rows(self) -> int:
        return int(self.row_ids.size)

    def nbytes(self) -> int:
        total = self.row_ids.nbytes + self.row_ptr.nbytes + self.col_idx.nbytes
        if self.values is not None:
            total += self.values.nbytes
        return total

    def row_sources(self) -> np.ndarray:
        """Per-entry row ids (expanded), used by the SpMV kernels.

        Memoized read-only, mirroring
        :meth:`~repro.graph.csr.CSRGraph.source_ids`: the CDLP/LCC
        kernels ask for it on every invocation.
        """
        cached = self.__dict__.get("_row_sources")
        if cached is None:
            cached = np.repeat(self.row_ids, np.diff(self.row_ptr))
            cached.setflags(write=False)
            object.__setattr__(self, "_row_sources", cached)
        return cached

    def __getstate__(self) -> dict:
        return {k: v for k, v in self.__dict__.items()
                if k != "_row_sources"}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Generalized SpMV over (multiply, add) semirings -- the GraphMat
    # programming model reduces every algorithm to this primitive.
    # ------------------------------------------------------------------
    def spmv_or_and(self, x_mask: np.ndarray) -> np.ndarray:
        """Boolean semiring SpMV: ``y[r] = OR_j (A[r, j] AND x[j])``.

        Used by the GraphMat BFS: ``x_mask`` is the frontier on the
        transposed adjacency, ``y`` the set of vertices with a frontier
        in-neighbor.
        """
        hits = x_mask[self.col_idx]
        seg = np.add.reduceat(hits, self.row_ptr[:-1]) if self.nnz else (
            np.zeros(0, dtype=np.int64))
        y = np.zeros(self.n, dtype=bool)
        if self.nnz:
            y[self.row_ids] = seg > 0
        return y

    def spmv_min_plus(self, x: np.ndarray) -> np.ndarray:
        """Tropical semiring SpMV: ``y[r] = min_j (A[r, j] + x[j])``.

        Used by GraphMat's Bellman-Ford SSSP on the transposed weighted
        adjacency.  Pattern-only matrices behave as all-zero values
        (pure min gather, what the CC vertex program needs).  Rows with
        no entries yield ``+inf``.
        """
        y = np.full(self.n, np.inf)
        if not self.nnz:
            return y
        terms = x[self.col_idx]
        if self.values is not None:
            terms = self.values + terms
        mins = np.minimum.reduceat(terms, self.row_ptr[:-1])
        y[self.row_ids] = mins
        return y

    def spmv_plus_times(self, x: np.ndarray,
                        pattern_only: bool = False) -> np.ndarray:
        """Arithmetic SpMV: ``y[r] = sum_j A[r, j] * x[j]``.

        Used by GraphMat PageRank, which runs on the adjacency *pattern*
        (``pattern_only=True`` treats every stored value as 1, as the
        unweighted vertex program does even on a weighted matrix).

        An integer-dtype ``x`` against stored float values promotes the
        result to ``float64`` (matching :meth:`spmv_min_plus`'s
        contract); the old ``values.astype(x.dtype)`` silently truncated
        every weight toward zero instead.  Floating ``x`` keeps the
        historical dtype and rounding exactly (the kernel gate compares
        bytes).
        """
        use_values = self.values is not None and not pattern_only
        promote = use_values and not np.issubdtype(x.dtype, np.floating)
        out_dtype = np.dtype(np.float64) if promote else x.dtype
        if not self.nnz:
            return np.zeros(self.n, dtype=out_dtype)
        terms = x[self.col_idx]
        if use_values:
            if promote:
                terms = terms * self.values
            else:
                terms = terms * self.values.astype(x.dtype, copy=False)
        sums = np.add.reduceat(terms, self.row_ptr[:-1])
        y = np.zeros(self.n, dtype=out_dtype)
        y[self.row_ids] = sums.astype(out_dtype, copy=False)
        return y

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DCSRMatrix(n={self.n}, nonempty_rows={self.n_nonempty_rows}, "
            f"nnz={self.nnz})"
        )
