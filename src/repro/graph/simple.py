"""Simplified undirected view shared by the structural kernels.

k-core decomposition, maximal independent set, and connected
components are defined on the *simple undirected* graph: self-loops
dropped, duplicate edges counted once, every arc usable in both
directions.  The homogenized datasets can carry all three artifacts,
and each system stores its own representation -- so cross-system exact
agreement (the differential-matrix contract) requires every
implementation to reduce to the identical view first.  This module is
that reduction: the same scipy canonicalization the LCC kernels already
use inline, packaged once so five systems cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["SimpleView", "simple_undirected_view"]


@dataclass(frozen=True)
class SimpleView:
    """CSR of the simple undirected graph (sorted, deduplicated)."""

    n: int
    #: ``int64[n + 1]`` row pointer (compatible with ``gather_slots``).
    indptr: np.ndarray
    #: ``int64[nnz]`` neighbor ids, sorted within each row.
    indices: np.ndarray
    #: ``int64[n]`` simple degrees (``diff(indptr)``).
    degrees: np.ndarray

    @property
    def nnz(self) -> int:
        """Stored directed slots (2x the simple edge count)."""
        return int(self.indices.size)

    def neighbors_of(self, vertices: np.ndarray) -> np.ndarray:
        """Concatenated neighbor lists of ``vertices`` (copy)."""
        counts = self.degrees[vertices]
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.indptr[vertices]
        offsets = np.zeros(counts.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        slots = (np.repeat(starts - offsets, counts)
                 + np.arange(total, dtype=np.int64))
        return self.indices[slots]

    def to_edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) of every stored slot (both directions present)."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
        return src, self.indices


def simple_undirected_view(src: np.ndarray, dst: np.ndarray,
                           n: int) -> SimpleView:
    """Reduce raw arcs to the canonical simple undirected view.

    Follows the LCC kernels' exact construction -- drop self-loops,
    binarize, symmetrize, re-binarize -- so every caller lands on
    byte-identical ``indptr``/``indices`` arrays for the same input
    edge set, whichever system's representation the arcs came from.
    """
    src = np.asarray(src)
    dst = np.asarray(dst)
    keep = src != dst
    a_dir = sp.csr_matrix(
        (np.ones(int(keep.sum()), dtype=np.int64),
         (src[keep], dst[keep])), shape=(n, n))
    a_dir.sum_duplicates()
    a_dir.data[:] = 1
    und = a_dir + a_dir.T
    und.data[:] = 1
    und.sum_duplicates()
    und.data[:] = 1
    und = und.tocsr()
    und.sort_indices()
    indptr = und.indptr.astype(np.int64)
    indices = und.indices.astype(np.int64)
    return SimpleView(n=int(n), indptr=indptr, indices=indices,
                      degrees=np.diff(indptr))
