"""Batched dynamic graphs: a mutation log over the immutable CSR.

The paper evaluates every system on *static* snapshots; streaming
evaluations (Ammar & Özsu, PAPERS.md) show mutation-under-query is
where implementations actually diverge.  This module is the ingest
side of that scenario family: :class:`MutationBatch` (edge inserts +
deletes), :class:`DynamicGraph` (the mutable adjacency), and
:class:`MutationLog` (an append-only batch sequence with replay).

Representation.  A dynamic graph is a *simple* directed graph -- a set
of distinct ``(src, dst)`` arcs with an optional weight each -- stored
as one sorted ``int64`` array of combined keys ``src * n + dst`` (plus
an aligned weight array).  Batch application is three vectorized
passes: delete lookup via ``searchsorted``, last-write-wins dedup of
the inserts, and a sorted merge (``np.insert``).  No Python-level loop
ever touches an edge.

Why sorted keys: for *distinct* pairs, ascending ``src * n + dst``
order is exactly the ``np.lexsort((dst, src))`` order
:meth:`CSRGraph.from_arrays` produces, so :meth:`DynamicGraph.snapshot`
can decode the key array straight into a CSR that is **byte-identical**
to rebuilding ``CSRGraph.from_arrays`` from the replayed edge list --
the property the hypothesis suite in ``tests/graph/test_dynamic.py``
pins down and the incremental kernels' differential gate relies on.

Aliasing discipline: :meth:`DynamicGraph.apply` never mutates an array
a previously returned snapshot may share (copy-on-write before any
in-place weight update), so snapshots stay immutable forever.

Semantics of one batch (matching an OpsLog-style event stream):

* deletes apply first, then inserts;
* deleting an absent arc is a no-op;
* inserting an existing arc overwrites its weight (last write wins,
  also within the batch);
* endpoints are validated against ``[0, n)`` up front, raising
  :class:`~repro.errors.GraphFormatError` naming the offending index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList

__all__ = ["MutationBatch", "AppliedBatch", "DynamicGraph",
           "MutationLog"]

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_W = np.empty(0, dtype=np.float64)


def _ids(arr, name: str) -> np.ndarray:
    a = np.ascontiguousarray(arr, dtype=np.int64)
    if a.ndim != 1:
        raise GraphFormatError(f"{name} must be a 1-D integer array")
    return a


@dataclass(frozen=True)
class MutationBatch:
    """One batch of edge mutations: deletes applied first, then inserts.

    All arrays are ``int64`` endpoint ids; ``insert_weights`` is an
    optional aligned ``float64`` array (required iff the target
    :class:`DynamicGraph` is weighted).
    """

    insert_src: np.ndarray = field(default_factory=lambda: _EMPTY_IDS)
    insert_dst: np.ndarray = field(default_factory=lambda: _EMPTY_IDS)
    insert_weights: np.ndarray | None = None
    delete_src: np.ndarray = field(default_factory=lambda: _EMPTY_IDS)
    delete_dst: np.ndarray = field(default_factory=lambda: _EMPTY_IDS)

    def __post_init__(self) -> None:
        for name in ("insert_src", "insert_dst", "delete_src",
                     "delete_dst"):
            object.__setattr__(self, name, _ids(getattr(self, name),
                                                name))
        if self.insert_src.shape != self.insert_dst.shape:
            raise GraphFormatError(
                f"insert src/dst length mismatch: "
                f"{self.insert_src.size} vs {self.insert_dst.size}")
        if self.delete_src.shape != self.delete_dst.shape:
            raise GraphFormatError(
                f"delete src/dst length mismatch: "
                f"{self.delete_src.size} vs {self.delete_dst.size}")
        if self.insert_weights is not None:
            w = np.ascontiguousarray(self.insert_weights,
                                     dtype=np.float64)
            object.__setattr__(self, "insert_weights", w)
            if w.shape != self.insert_src.shape:
                raise GraphFormatError(
                    "insert_weights length must match insert edge count")

    @property
    def n_inserts(self) -> int:
        return int(self.insert_src.size)

    @property
    def n_deletes(self) -> int:
        return int(self.delete_src.size)

    def symmetrized(self) -> "MutationBatch":
        """Both directions of every insert *and* delete (loops single).

        Event-stream scenarios treat edges as undirected, exactly like
        :meth:`repro.graph.edgelist.EdgeList.symmetrized`; the dynamic
        graph itself stays a directed arc set.
        """
        loops = self.insert_src == self.insert_dst
        ins_s = np.concatenate([self.insert_src,
                                self.insert_dst[~loops]])
        ins_d = np.concatenate([self.insert_dst,
                                self.insert_src[~loops]])
        w = None
        if self.insert_weights is not None:
            w = np.concatenate([self.insert_weights,
                                self.insert_weights[~loops]])
        dloops = self.delete_src == self.delete_dst
        del_s = np.concatenate([self.delete_src,
                                self.delete_dst[~dloops]])
        del_d = np.concatenate([self.delete_dst,
                                self.delete_src[~dloops]])
        return MutationBatch(insert_src=ins_s, insert_dst=ins_d,
                             insert_weights=w, delete_src=del_s,
                             delete_dst=del_d)


@dataclass(frozen=True)
class AppliedBatch:
    """The *effective* delta one :meth:`DynamicGraph.apply` produced.

    ``inserted_*`` is the deduplicated (last-write-wins) insert set --
    every arc the batch asserted present, including pure weight updates
    and reinserts.  ``removed_*`` is every arc that was present before
    the batch and was deleted *or* had its weight changed (a weight
    change is a remove + insert as far as path repair is concerned;
    deleted-then-reinserted arcs appear in both sets).  The incremental
    kernels consume exactly these two conservative sets.
    """

    inserted_src: np.ndarray
    inserted_dst: np.ndarray
    inserted_weights: np.ndarray | None
    removed_src: np.ndarray
    removed_dst: np.ndarray
    #: Arcs newly present (were absent before the insert phase).
    n_new: int
    #: Existing arcs whose weight the insert phase overwrote.
    n_updated: int
    #: Arcs the delete phase actually removed.
    n_deleted: int


class DynamicGraph:
    """A mutable simple directed graph over a fixed vertex set.

    ``n`` is fixed at construction (mutations add and remove arcs, not
    vertices -- the Kronecker id space is dense).  ``weighted`` decides
    whether batches must carry insert weights.
    """

    __slots__ = ("n", "weighted", "_keys", "_w")

    def __init__(self, n: int, *, weighted: bool = False):
        n = int(n)
        if n < 0:
            raise GraphFormatError("n must be non-negative")
        self.n = n
        self.weighted = bool(weighted)
        self._keys = _EMPTY_IDS
        self._w = _EMPTY_W if weighted else None

    @classmethod
    def from_edge_list(cls, edges: EdgeList, *,
                       symmetrize: bool = False) -> "DynamicGraph":
        """Seed a dynamic graph from an edge list (one insert batch).

        Duplicate tuples collapse under last-write-wins, so the result
        is the *simple* graph of the list (unlike
        :meth:`CSRGraph.from_edge_list`, which keeps parallel arcs).
        """
        g = cls(edges.n_vertices, weighted=edges.weighted)
        batch = MutationBatch(insert_src=edges.src,
                              insert_dst=edges.dst,
                              insert_weights=edges.weights)
        if symmetrize:
            batch = batch.symmetrized()
        g.apply(batch)
        return g

    # ------------------------------------------------------------------
    @property
    def n_arcs(self) -> int:
        return int(self._keys.size)

    def has_arc(self, u: int, v: int) -> bool:
        if not (0 <= u < self.n and 0 <= v < self.n):
            return False
        key = np.int64(u) * self.n + v
        i = np.searchsorted(self._keys, key)
        return bool(i < self._keys.size and self._keys[i] == key)

    def arcs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Decode the live arc set as ``(src, dst, weights)`` sorted by
        ``(src, dst)``."""
        if self.n == 0:
            return (_EMPTY_IDS, _EMPTY_IDS,
                    _EMPTY_W if self.weighted else None)
        return (self._keys // self.n, self._keys % self.n,
                None if self._w is None else self._w.copy())

    # ------------------------------------------------------------------
    def _check_ids(self, arr: np.ndarray, kind: str,
                   name: str) -> None:
        if arr.size == 0:
            return
        bad = (arr < 0) | (arr >= self.n)
        if bad.any():
            i = int(np.argmax(bad))
            raise GraphFormatError(
                f"{kind} {name}[{i}] = {int(arr[i])}: vertex id out of "
                f"range [0, {self.n})")

    def apply(self, batch: MutationBatch) -> AppliedBatch:
        """Apply one batch; return its effective delta.

        Deletes first, then inserts; see the module docstring for the
        full semantics.  Never mutates arrays shared with an earlier
        :meth:`snapshot`.
        """
        self._check_ids(batch.delete_src, "delete", "src")
        self._check_ids(batch.delete_dst, "delete", "dst")
        self._check_ids(batch.insert_src, "insert", "src")
        self._check_ids(batch.insert_dst, "insert", "dst")
        if self.weighted and batch.n_inserts and \
                batch.insert_weights is None:
            raise GraphFormatError(
                "weighted dynamic graph requires insert_weights")
        if not self.weighted and batch.insert_weights is not None:
            raise GraphFormatError(
                "unweighted dynamic graph got insert_weights")

        n = self.n
        keys, w = self._keys, self._w

        # -- delete phase ------------------------------------------------
        removed_keys = _EMPTY_IDS
        if batch.n_deletes:
            dkeys = np.unique(batch.delete_src * np.int64(n)
                              + batch.delete_dst)
            pos = np.searchsorted(keys, dkeys)
            ok = pos < keys.size
            present = np.zeros(dkeys.size, dtype=bool)
            present[ok] = keys[pos[ok]] == dkeys[ok]
            removed_keys = dkeys[present]
            if removed_keys.size:
                keep = np.ones(keys.size, dtype=bool)
                keep[pos[present]] = False
                keys = keys[keep]          # fresh arrays: old snapshot
                if w is not None:          # references stay intact
                    w = w[keep]
        n_deleted = int(removed_keys.size)

        # -- insert phase (last-write-wins dedup, sorted merge) ----------
        n_new = n_updated = 0
        ins_keys = _EMPTY_IDS
        ins_w = _EMPTY_W if self.weighted else None
        changed_keys = _EMPTY_IDS
        if batch.n_inserts:
            ikeys = batch.insert_src * np.int64(n) + batch.insert_dst
            order = np.argsort(ikeys, kind="stable")
            sk = ikeys[order]
            last = np.ones(sk.size, dtype=bool)
            last[:-1] = sk[1:] != sk[:-1]
            ins_keys = sk[last]
            if self.weighted:
                ins_w = batch.insert_weights[order][last]
            pos = np.searchsorted(keys, ins_keys)
            ok = pos < keys.size
            present = np.zeros(ins_keys.size, dtype=bool)
            present[ok] = keys[pos[ok]] == ins_keys[ok]
            n_updated = int(present.sum())
            if n_updated and w is not None:
                old = w[pos[present]]
                new = ins_w[present]
                diff = old != new
                changed_keys = ins_keys[present][diff]
                if changed_keys.size:
                    w = w.copy()           # copy-on-write for snapshots
                    w[pos[present][diff]] = new[diff]
            fresh = ~present
            if fresh.any():
                at = pos[fresh]
                n_new = int(fresh.sum())
                keys = np.insert(keys, at, ins_keys[fresh])
                if w is not None:
                    w = np.insert(w, at, ins_w[fresh])

        self._keys, self._w = keys, w

        # A weight change is a remove + insert for path repair.
        if changed_keys.size:
            removed_keys = np.unique(np.concatenate([removed_keys,
                                                     changed_keys]))
        if n == 0:
            rs = rd = isrc = idst = _EMPTY_IDS
        else:
            rs, rd = removed_keys // n, removed_keys % n
            isrc, idst = ins_keys // n, ins_keys % n
        return AppliedBatch(
            inserted_src=isrc, inserted_dst=idst,
            inserted_weights=ins_w if self.weighted else None,
            removed_src=rs, removed_dst=rd,
            n_new=n_new, n_updated=n_updated, n_deleted=n_deleted)

    # ------------------------------------------------------------------
    def snapshot(self) -> CSRGraph:
        """Materialize the live arc set as an immutable CSR.

        Byte-identical to ``CSRGraph.from_arrays`` over the replayed
        edge list: the keys are already in ``lexsort((dst, src))``
        order, so this is a pure decode -- ``O(m + n)``, no sort.
        """
        n = self.n
        row_ptr = np.zeros(n + 1, dtype=np.int64)
        if n == 0 or not self._keys.size:
            return CSRGraph(row_ptr=row_ptr, col_idx=_EMPTY_IDS.copy(),
                            weights=(_EMPTY_W.copy() if self.weighted
                                     else None))
        src = self._keys // n
        np.cumsum(np.bincount(src, minlength=n), out=row_ptr[1:])
        # ``% n`` allocates fresh arrays; ``_w`` is copy-on-write (see
        # apply), so sharing it keeps the snapshot immutable.
        return CSRGraph(row_ptr=row_ptr, col_idx=self._keys % n,
                        weights=self._w)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DynamicGraph(n={self.n}, arcs={self.n_arcs}, "
                f"weighted={self.weighted})")


class MutationLog:
    """Append-only sequence of batches; the replayable stream artifact."""

    __slots__ = ("_batches",)

    def __init__(self, batches=()):
        self._batches: list[MutationBatch] = list(batches)

    def append(self, batch: MutationBatch) -> None:
        self._batches.append(batch)

    def __len__(self) -> int:
        return len(self._batches)

    def __iter__(self):
        return iter(self._batches)

    def __getitem__(self, i: int) -> MutationBatch:
        return self._batches[i]

    def replay(self, graph: DynamicGraph):
        """Apply every batch in order, yielding ``(batch, applied)``."""
        for batch in self._batches:
            yield batch, graph.apply(batch)
