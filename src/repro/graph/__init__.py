"""Graph data structures shared by all reimplemented systems.

This package provides the storage substrate the paper's five systems are
built on:

* :class:`~repro.graph.edgelist.EdgeList` -- the unordered edge tuples
  that the Graph500 specification calls the *edge list in RAM*; every
  system's "data structure construction" phase starts from one of these.
* :class:`~repro.graph.csr.CSRGraph` -- compressed sparse row adjacency,
  the representation used (per the paper, Sec. III-C) by the Graph500,
  GAP, and GraphBIG.
* :class:`~repro.graph.dcsr.DCSRMatrix` -- doubly-compressed sparse row,
  the representation GraphMat layers its SpMV kernels on.
* :mod:`~repro.graph.validation` -- the Graph500 result-validation rules
  (BFS tree checks) plus SSSP/PageRank verifiers used by the test suite.
* :mod:`~repro.graph.frontier` + :mod:`~repro.graph.scratch` -- the
  shared frontier-primitive library (slot expansion, first-parent
  claims, relaxation scatter, dedup) every system's per-round hot loop
  runs on, with preallocated per-graph scratch (see
  ``docs/kernels.md`` for the bit-identity contract).
"""

from repro.graph.edgelist import EdgeList
from repro.graph.csr import CSRGraph
from repro.graph.dcsr import DCSRMatrix
from repro.graph.frontier import Frontier
from repro.graph.scratch import KernelScratch, scratch_for

__all__ = ["EdgeList", "CSRGraph", "DCSRMatrix", "Frontier",
           "KernelScratch", "scratch_for"]
