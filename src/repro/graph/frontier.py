"""Shared frontier primitives for the per-round kernel hot path.

Every system EPG* times runs the same per-round skeleton -- gather the
out-slots of the active vertex set, filter, claim/reduce per
destination -- and until this module each of the five systems (plus the
reference algorithms) re-implemented it with fresh NumPy temporaries and
``O(E log E)`` sort-based dedup per round.  This is the consolidated,
benchmarked version: Ligra's edgeMap idea (Dhulipala, Blelloch & Shun's
GBBS keeps one frontier abstraction across all algorithms) applied to
the vectorized-NumPy setting, with preallocated per-graph scratch
(:mod:`repro.graph.scratch`).

**Bit-identity contract.**  Each primitive computes *exactly* the same
arrays as the idiom it replaces (``np.repeat``+``cumsum``+``arange``
slot expansion, ``np.lexsort`` first-parent dedup, ``np.minimum.at`` +
``np.unique`` relaxation).  Equality is provable, not approximate:

* :func:`gather_slots` produces the identical ``int64`` slot vector via
  an integer cumulative sum (exact arithmetic, different association);
* :func:`claim_first_parent` selects the minimum source per target --
  the same winner ``np.lexsort((srcs, nbrs))`` + first-occurrence picks
  -- either by reverse-order scatter (last write wins, so the first =
  minimum source lands; requires the documented non-decreasing ``srcs``)
  or by stable sort + ``minimum.reduceat`` on small rounds;
* :func:`segment_min_scatter` applies the same ``np.minimum.at`` update
  (minimum is exact and order-independent over floats without NaN) and
  rebuilds ``np.unique``'s sorted-unique output with a boolean-mask
  pass;
* :func:`dedup_ids` is ``np.unique`` for bounded non-negative ids.

Floating-point *sums* (``np.add.at`` in PageRank and Brandes) are left
untouched everywhere: re-associating additions changes low-order bits,
which the byte-identity gate (``benchmarks/bench_kernels.py``) would
reject.

The gate also enforces the point of the exercise: >=2x on the
gathered-edge hot loop at Kronecker scale 16.
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graph.scratch import COUNTERS, KernelScratch

__all__ = ["GatherSlots", "gather_slots", "claim_first_parent",
           "segment_min_scatter", "dedup_ids", "Frontier", "BucketQueue",
           "resolve_batch_rows", "DENSE_FRONTIER_DENSITY"]

#: Sparse-list frontiers denser than this switch to bitmap form (the
#: Ligra-style |F| > n/32 rule of thumb: beyond it a dense bool sweep
#: beats maintaining a sorted id list).
DENSE_FRONTIER_DENSITY = 1.0 / 32.0

#: Below ``n >> _SMALL_SHIFT`` touched elements, sort-based paths beat
#: O(n) mask sweeps; both sides are bit-identical so this is purely a
#: constant-factor switch.
_SMALL_SHIFT = 4


@dataclass(frozen=True)
class GatherSlots:
    """One frontier expansion: views into scratch, valid until the next
    :func:`gather_slots` on the same scratch.

    Attributes
    ----------
    slots:
        ``int64[total]`` indices into ``col_idx``/``weights`` covering
        every out-slot of the frontier, in frontier order.
    counts:
        ``int64[|frontier|]`` out-degrees of the frontier vertices.
    offsets:
        ``int64[|frontier|]`` start of each vertex's segment in
        ``slots`` (exclusive cumulative sum of ``counts``).
    total:
        ``int(counts.sum())`` -- the gathered edge count the work
        profiles price.
    """

    slots: np.ndarray
    counts: np.ndarray
    offsets: np.ndarray
    total: int


def gather_slots(row_ptr: np.ndarray, frontier: np.ndarray,
                 scratch: KernelScratch) -> GatherSlots:
    """Expand ``frontier`` into the slot indices of all its out-edges.

    Replaces the ``np.repeat(starts - offsets, counts) +
    np.arange(total)`` idiom with a single integer ``cumsum`` over a
    mostly-ones difference vector written into preallocated scratch:
    within a vertex's segment consecutive slots differ by one, and at
    each segment boundary the difference re-bases to that vertex's
    ``row_ptr`` start.  Exact integer arithmetic makes the result
    bit-identical to the old five-temporary version.
    """
    starts = row_ptr[frontier]
    ends = row_ptr[frontier + 1]
    counts = ends - starts
    total = int(counts.sum())
    offsets = scratch.seg_i64(max(counts.size, 1))[:counts.size]
    if counts.size:
        offsets[0] = 0
        np.cumsum(counts[:-1], out=offsets[1:])
    COUNTERS["gather_edges"] += float(total)
    if total == 0:
        return GatherSlots(np.empty(0, dtype=np.int64), counts,
                           offsets, 0)
    slots = scratch.edge_i64(total)
    slots[:] = 1
    segs = np.flatnonzero(counts)
    bounds = offsets[segs]
    slots[bounds[0]] = starts[segs[0]]
    if segs.size > 1:
        # Boundary difference: previous segment ended at ends[prev] - 1.
        slots[bounds[1:]] = starts[segs[1:]] - ends[segs[:-1]] + 1
    np.cumsum(slots, out=slots)
    return GatherSlots(slots, counts, offsets, total)


def claim_first_parent(nbrs: np.ndarray, srcs: np.ndarray,
                       visited: np.ndarray, parent: np.ndarray,
                       scratch: KernelScratch) -> np.ndarray:
    """Claim every unvisited target in ``nbrs`` for its smallest source.

    Replaces the per-round ``np.lexsort((srcs, nbrs))`` +
    first-occurrence dedup.  ``srcs`` must be non-decreasing -- always
    true for frontier expansions, since frontiers are sorted vertex ids
    and :func:`gather_slots` emits segments in frontier order.  Under
    that precondition a *reverse-order* scatter leaves, for each target,
    the value of its first (= minimum) source: NumPy assignment with
    duplicate indices stores the last write.  Visited targets are
    dropped afterwards, which is equivalent to the old pre-filter
    because a still-unvisited target keeps all of its frontier edges.

    Writes ``parent[new] = min src`` and ``visited[new] = True``;
    returns the sorted ids of newly claimed vertices (the next
    frontier), exactly as the lexsort version produced them.

    On rounds touching far fewer edges than ``n`` the O(n) mask sweep
    would dominate, so a stable counting sort (NumPy's radix path for
    int64) + ``minimum.reduceat`` computes the same winners instead.
    """
    if nbrs.size == 0:
        return np.empty(0, dtype=np.int64)
    n = visited.size
    if nbrs.size < (n >> _SMALL_SHIFT):
        order = np.argsort(nbrs, kind="stable")
        nbrs_s = nbrs[order]
        first = np.ones(nbrs_s.size, dtype=bool)
        first[1:] = nbrs_s[1:] != nbrs_s[:-1]
        uniq = nbrs_s[first]
        mins = np.minimum.reduceat(srcs[order], np.flatnonzero(first))
        fresh = ~visited[uniq]
        new_v = uniq[fresh]
        parent[new_v] = mins[fresh]
        visited[new_v] = True
        return new_v
    mask = scratch.mask("claim")
    claim = scratch.vertex_i64("claim")
    mask[nbrs] = True
    claim[nbrs[::-1]] = srcs[::-1]
    touched = np.flatnonzero(mask)
    mask[touched] = False
    new_v = touched[~visited[touched]]
    parent[new_v] = claim[new_v]
    visited[new_v] = True
    return new_v


def segment_min_scatter(dist: np.ndarray, dsts: np.ndarray,
                        cand: np.ndarray,
                        scratch: KernelScratch) -> np.ndarray:
    """``dist[d] = min(dist[d], min of cand over d)`` per destination;
    returns the sorted unique destinations.

    Replaces the ``np.minimum.at`` + ``np.unique`` pair of the
    relaxation kernels.  The minimum itself is kept as the indexed
    ufunc (NumPy >= 1.24 ships an indexed fast path that beats
    sort + ``minimum.reduceat`` -- measured in the kernel gate); the
    ``O(E log E)`` ``np.unique`` sort is what actually dominated, and
    :func:`dedup_ids` rebuilds its exact output in ``O(E + n)``.
    Minimum over NaN-free floats is order-independent, so the update is
    bit-identical however the duplicates were grouped.
    """
    np.minimum.at(dist, dsts, cand)
    return dedup_ids(dsts, dist.size, scratch)


def dedup_ids(ids: np.ndarray, n: int,
              scratch: KernelScratch) -> np.ndarray:
    """Sorted unique ids out of ``ids`` (all in ``[0, n)``).

    ``np.unique`` without the sort: scatter into a scratch mask, sweep
    once, re-clear only the touched entries.  Small inputs keep
    ``np.unique`` (the sweep would cost O(n) regardless of input size);
    both branches return identical arrays.
    """
    if ids.size == 0:
        return np.empty(0, dtype=np.int64)
    if ids.size < (n >> _SMALL_SHIFT):
        return np.unique(ids)
    mask = scratch.mask("dedup")
    mask[ids] = True
    out = np.flatnonzero(mask)
    mask[out] = False
    return out


class BucketQueue:
    """Lazy monotone bucket queue: pending id lists + a min-heap of keys.

    Generalized out of GAP's delta-stepping (where it replaced the
    ``O(n)`` ``np.flatnonzero(bucket == current)`` scan per bucket) so
    k-core peeling can share it.  The caller-owned ``key`` array stays
    the source of truth; *decrease-key* (and increase-key) is simply a
    fresh :meth:`push` with the new key -- entries that went stale
    between push and pop are filtered by ``key[v] == k`` on pop.
    Invariant: every vertex with ``key[v] == k >= 0`` has at least one
    entry in ``pending[k]``, so a pop yields exactly the sorted-unique
    set a full scan would have produced.
    """

    __slots__ = ("_pending", "_heap")

    def __init__(self) -> None:
        self._pending: dict[int, list[np.ndarray]] = {}
        self._heap: list[int] = []

    def push(self, vertices: np.ndarray, keys: np.ndarray) -> None:
        """Enqueue ``vertices`` under their (per-vertex) ``keys``.

        One stable sort splits the batch into per-key slices (views,
        no copies): ``O(b log b)`` total instead of the ``O(b)``
        boolean mask *per distinct key* a groupby-by-masking costs --
        the difference between winning and losing to the ``O(n)``
        re-scan baseline on skewed degree distributions.

        ``vertices`` and ``keys`` must align: a longer ``vertices``
        array used to silently drop its tail after the
        ``vertices[order]`` fancy-indexing, violating the documented
        pending-list invariant (a vertex with a live key but no pending
        entry is never popped).
        """
        if vertices.size != keys.size:
            raise ConfigError(
                f"BucketQueue.push: vertices.size ({vertices.size}) != "
                f"keys.size ({keys.size})")
        if keys.size == 0:
            return
        order = np.argsort(keys, kind="stable")
        sorted_vertices = vertices[order]
        sorted_keys = keys[order]
        uniq, starts = np.unique(sorted_keys, return_index=True)
        bounds = np.append(starts, sorted_keys.size)
        for i, k in enumerate(uniq):
            k = int(k)
            part = sorted_vertices[bounds[i]:bounds[i + 1]]
            lst = self._pending.get(k)
            if lst is None:
                self._pending[k] = [part]
                heapq.heappush(self._heap, k)
            else:
                lst.append(part)

    def pop(self, key: np.ndarray) -> tuple[int, np.ndarray] | None:
        """Lowest bucket with live members, or ``None`` when drained.

        A member is live when ``key[v]`` still equals the bucket it was
        pushed under; everything else is a stale entry from before a
        decrease/increase-key and is skipped (the "lazy bucket" part).
        """
        while self._heap:
            k = heapq.heappop(self._heap)
            parts = self._pending.pop(k)
            cand = parts[0] if len(parts) == 1 else np.concatenate(parts)
            members = np.unique(cand[key[cand] == k])
            if members.size:
                return k, members
        return None


def resolve_batch_rows(batch_rows: int | None, n: int,
                       default: int = 2048) -> int:
    """Validate the row-blocking width of the SpGEMM-style kernels.

    ``None`` resolves to ``min(default, n)`` (never below 1, so empty
    graphs still get a well-formed ``range``).  An explicit width must
    actually tile the matrix: non-positive values or more rows than the
    graph has are configuration errors, not silently-working slices.
    """
    if batch_rows is None:
        return max(min(default, n), 1)
    batch_rows = int(batch_rows)
    if batch_rows <= 0 or batch_rows > max(n, 1):
        raise ConfigError(
            f"batch_rows must be in [1, n={n}], got {batch_rows}")
    return batch_rows


class Frontier:
    """A vertex frontier holding sparse-list and dense-bitmap forms.

    The active set is canonically a sorted ``int64`` id list (what
    top-down expansion consumes); :meth:`as_mask` materializes the
    bitmap view on demand into per-graph scratch (what bottom-up
    parent search and pull-style sweeps consume), clearing the previous
    round's bits proportionally to their count.  :attr:`dense` exposes
    the Ligra-style switch hint: past
    :data:`DENSE_FRONTIER_DENSITY` the bitmap is the cheaper working
    form.  The wrapper never changes which representation an
    algorithm's *accounting* assumes -- it only keeps both forms
    coherent and allocation-free.
    """

    __slots__ = ("n", "_scratch", "_ids", "_masked")

    def __init__(self, n: int, scratch: KernelScratch,
                 ids: np.ndarray | None = None):
        self.n = int(n)
        self._scratch = scratch
        self._ids = (np.empty(0, dtype=np.int64)
                     if ids is None else ids)
        self._masked: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return int(self._ids.size)

    def __bool__(self) -> bool:
        return self._ids.size > 0

    @property
    def density(self) -> float:
        return self._ids.size / self.n if self.n else 0.0

    @property
    def dense(self) -> bool:
        """True when the bitmap form is the cheaper working set."""
        return self.density >= DENSE_FRONTIER_DENSITY

    # ------------------------------------------------------------------
    def replace(self, ids: np.ndarray) -> None:
        """Swap in the next round's id list, invalidating the bitmap."""
        if self._masked is not None:
            self._scratch.release_mask(self._scratch.mask("frontier"),
                                       self._masked)
            self._masked = None
        self._ids = ids

    def as_ids(self) -> np.ndarray:
        return self._ids

    def as_mask(self) -> np.ndarray:
        """The ``bool[n]`` bitmap view (scratch-backed, reused)."""
        mask = self._scratch.mask("frontier")
        if self._masked is None:
            mask[self._ids] = True
            self._masked = self._ids
        return mask

    def release(self) -> None:
        """Clear the bitmap so the scratch mask is clean for others."""
        self.replace(np.empty(0, dtype=np.int64))
