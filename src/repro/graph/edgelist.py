"""Unordered edge lists: the common input to every system's builder.

The Graph500 benchmark defines its first timed kernel as the
construction of a graph data structure *from an unsorted edge list
stored in RAM*.  ``EdgeList`` is that artifact: a pair of vertex index
arrays (plus optional weights) with no ordering or dedup guarantees,
exactly like the tuple list the Kronecker generator emits.

All arrays are NumPy; operations are vectorized (no Python-level loops
over edges) per the HPC-Python idioms this repo follows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["EdgeList"]


@dataclass
class EdgeList:
    """An unordered list of ``(src, dst[, weight])`` tuples.

    Parameters
    ----------
    src, dst:
        1-D integer arrays of equal length holding edge endpoints.
    n_vertices:
        Number of vertices; vertex ids must lie in ``[0, n_vertices)``.
    weights:
        Optional float array of per-edge weights (same length).
    directed:
        Whether the edges are directed.  Undirected edge lists store each
        edge once; builders symmetrize them.
    """

    src: np.ndarray
    dst: np.ndarray
    n_vertices: int
    weights: np.ndarray | None = None
    directed: bool = True
    name: str = field(default="graph")

    def __post_init__(self) -> None:
        self.src = np.ascontiguousarray(self.src, dtype=np.int64)
        self.dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        if self.src.ndim != 1 or self.dst.ndim != 1:
            raise GraphFormatError("edge endpoint arrays must be 1-D")
        if self.src.shape != self.dst.shape:
            raise GraphFormatError(
                f"src/dst length mismatch: {self.src.shape} vs {self.dst.shape}"
            )
        if self.weights is not None:
            self.weights = np.ascontiguousarray(self.weights, dtype=np.float64)
            if self.weights.shape != self.src.shape:
                raise GraphFormatError("weights length must match edge count")
        self.n_vertices = int(self.n_vertices)
        if self.n_vertices < 0:
            raise GraphFormatError("n_vertices must be non-negative")
        if self.src.size:
            lo = min(self.src.min(), self.dst.min())
            hi = max(self.src.max(), self.dst.max())
            if lo < 0 or hi >= self.n_vertices:
                raise GraphFormatError(
                    f"vertex ids [{lo}, {hi}] out of range [0, {self.n_vertices})"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of stored edge tuples (each undirected edge counts once)."""
        return int(self.src.size)

    @property
    def weighted(self) -> bool:
        return self.weights is not None

    def nbytes(self) -> int:
        """In-RAM footprint of the tuple list (what builders must scan)."""
        total = self.src.nbytes + self.dst.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex counting stored tuples only."""
        return np.bincount(self.src, minlength=self.n_vertices)

    def degrees(self) -> np.ndarray:
        """Undirected degree: number of tuple slots touching each vertex."""
        deg = np.bincount(self.src, minlength=self.n_vertices)
        deg += np.bincount(self.dst, minlength=self.n_vertices)
        return deg

    # ------------------------------------------------------------------
    # Transformations (all return new EdgeLists; inputs are never mutated)
    # ------------------------------------------------------------------
    def symmetrized(self) -> "EdgeList":
        """Return a directed edge list containing both edge directions.

        Self-loops are kept single (they already point both ways).  This
        is the step every shared-memory system performs when handed an
        undirected graph.
        """
        loops = self.src == self.dst
        rev_src = self.dst[~loops]
        rev_dst = self.src[~loops]
        src = np.concatenate([self.src, rev_src])
        dst = np.concatenate([self.dst, rev_dst])
        weights = None
        if self.weights is not None:
            weights = np.concatenate([self.weights, self.weights[~loops]])
        return EdgeList(
            src, dst, self.n_vertices, weights=weights, directed=True,
            name=self.name,
        )

    def deduplicated(self) -> "EdgeList":
        """Remove duplicate ``(src, dst)`` pairs, keeping the first weight."""
        key = self.src * np.int64(self.n_vertices) + self.dst
        _, first = np.unique(key, return_index=True)
        first.sort()
        weights = self.weights[first] if self.weights is not None else None
        return EdgeList(
            self.src[first], self.dst[first], self.n_vertices,
            weights=weights, directed=self.directed, name=self.name,
        )

    def without_self_loops(self) -> "EdgeList":
        keep = self.src != self.dst
        weights = self.weights[keep] if self.weights is not None else None
        return EdgeList(
            self.src[keep], self.dst[keep], self.n_vertices,
            weights=weights, directed=self.directed, name=self.name,
        )

    def permuted(self, perm: np.ndarray) -> "EdgeList":
        """Relabel vertices by ``perm`` (old id ``v`` becomes ``perm[v]``).

        The Graph500 generator applies a random vertex permutation so
        that locality cannot be exploited by construction order.
        """
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.n_vertices,):
            raise GraphFormatError("permutation length must equal n_vertices")
        check = np.zeros(self.n_vertices, dtype=bool)
        check[perm] = True
        if not check.all():
            raise GraphFormatError("perm is not a permutation of vertex ids")
        return EdgeList(
            perm[self.src], perm[self.dst], self.n_vertices,
            weights=self.weights, directed=self.directed, name=self.name,
        )

    def with_unit_weights(self) -> "EdgeList":
        """Attach weight 1.0 to every edge (EPG* homogenization rule for
        running SSSP on unweighted datasets)."""
        return EdgeList(
            self.src, self.dst, self.n_vertices,
            weights=np.ones(self.n_edges, dtype=np.float64),
            directed=self.directed, name=self.name,
        )

    def with_random_weights(self, seed: int, low: float = 0.0,
                            high: float = 1.0) -> "EdgeList":
        """Attach uniform ``(low, high]`` random weights, as the
        Graph500 SSSP spec does (weights are never exactly ``low``, so
        shortest paths stay strictly monotone in hop count)."""
        rng = np.random.default_rng(seed)
        # random() draws [0, 1); reflecting it yields (low, high].
        w = high - rng.random(self.n_edges) * (high - low)
        return EdgeList(
            self.src, self.dst, self.n_vertices, weights=w,
            directed=self.directed, name=self.name,
        )

    def copy(self) -> "EdgeList":
        return EdgeList(
            self.src.copy(), self.dst.copy(), self.n_vertices,
            weights=None if self.weights is None else self.weights.copy(),
            directed=self.directed, name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        w = "weighted" if self.weighted else "unweighted"
        return (
            f"EdgeList(name={self.name!r}, n={self.n_vertices}, "
            f"m={self.n_edges}, {kind}, {w})"
        )
