"""Result validation in the style of the Graph500 specification.

The Graph500 spec requires every reported BFS to pass five structural
checks on its parent array; EPG* applies the same rules to every
system's output so a "fast" system cannot win by returning garbage.
SSSP and PageRank verifiers follow the same spirit (the paper notes
PageRank verification is out of scope for *its* experiments, but the
test suite here uses these to certify the reimplementations).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graph.csr import CSRGraph

__all__ = [
    "validate_bfs_parents",
    "validate_bfs_levels",
    "validate_sssp_distances",
    "validate_pagerank",
]


def _bfs_levels_from_parents(parent: np.ndarray, root: int) -> np.ndarray:
    """Depth of each reached vertex in the parent tree, or -1.

    Raises :class:`ValidationError` on cycles (a vertex whose parent
    chain never reaches the root).
    """
    n = parent.size
    level = np.full(n, -1, dtype=np.int64)
    level[root] = 0
    # Pointer-jumping: resolve all depths in O(log n) passes.
    reached = parent >= 0
    cur = np.arange(n, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    active = reached.copy()
    active[root] = False
    for _ in range(n + 1):
        if not active.any():
            break
        nxt = parent[cur[active]]
        depth[active] += 1
        cur[active] = nxt
        done = active & (cur == root)
        level[done] = depth[done]
        active &= cur != root
        if depth.max(initial=0) > n:
            raise ValidationError("parent chain exceeds n: cycle in BFS tree")
    else:  # pragma: no cover - defensive
        raise ValidationError("parent chains did not terminate")
    if np.any(active):
        raise ValidationError("parent chain does not reach the root")
    return level


def validate_bfs_parents(graph: CSRGraph, root: int,
                         parent: np.ndarray,
                         directed: bool = False) -> np.ndarray:
    """Run the Graph500 BFS validation; return the implied level array.

    Checks (numbered as in the spec):

    1. the tree is cycle-free and rooted at ``root``;
    2. tree edges connect vertices whose BFS levels differ by exactly one;
    3. every edge of the graph connects vertices whose levels differ by
       at most one, *or* connects to an unreached vertex on both sides;
    4. the tree spans exactly the connected component containing the root;
    5. every tree edge is an edge of the graph.

    With ``directed=True`` (EPG* runs BFS on directed real-world graphs
    too) checks 3 and 4 relax to the directed forms: an arc out of a
    reached vertex may only *lower* the target's level bound
    (``level[dst] <= level[src] + 1``) and arcs into the reached set from
    unreached vertices are legal.
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = graph.n_vertices
    if parent.shape != (n,):
        raise ValidationError("parent array has wrong length")
    if parent[root] != root:
        raise ValidationError("root must be its own parent")

    level = _bfs_levels_from_parents(parent, root)  # checks 1
    reached = level >= 0

    # Check 5 + 2: each non-root reached vertex's (parent -> child) must be
    # a graph arc and drop exactly one level.
    children = np.flatnonzero(reached & (np.arange(n) != root))
    if children.size:
        pars = parent[children]
        if np.any(level[children] != level[pars] + 1):
            raise ValidationError("tree edge does not drop exactly one level")
        # Arc existence: binary search each child in its parent's list.
        starts = graph.row_ptr[pars]
        ends = graph.row_ptr[pars + 1]
        ok = np.empty(children.size, dtype=bool)
        for i, (c, s, e) in enumerate(zip(children, starts, ends)):
            nbrs = graph.col_idx[s:e]
            j = np.searchsorted(nbrs, c)
            ok[i] = j < nbrs.size and nbrs[j] == c
        if not ok.all():
            bad = children[~ok][0]
            raise ValidationError(
                f"tree edge ({parent[bad]} -> {bad}) is not a graph arc")

    # Check 3 (+4): level consistency of every graph arc.
    src = graph.source_ids()
    dst = graph.col_idx
    if directed:
        out = reached[src]
        if np.any(out & ~reached[dst]):
            raise ValidationError(
                "arc leaves the reached set: BFS missed a vertex")
        if out.any():
            gap = level[dst[out]] - level[src[out]]
            if gap.max(initial=0) > 1:
                raise ValidationError(
                    "arc skips more than one BFS level forward")
    else:
        both = reached[src] & reached[dst]
        if np.any(reached[src] != reached[dst]):
            raise ValidationError("an edge crosses the reached/unreached cut")
        if both.any():
            gap = np.abs(level[src[both]] - level[dst[both]])
            if gap.max(initial=0) > 1:
                raise ValidationError(
                    "graph edge spans more than one BFS level")

    return level


def validate_bfs_levels(level: np.ndarray, reference_level: np.ndarray) -> None:
    """BFS levels are unique given the graph; compare to a reference."""
    if not np.array_equal(np.asarray(level), np.asarray(reference_level)):
        raise ValidationError("BFS levels differ from the reference BFS")


def validate_sssp_distances(dist: np.ndarray, reference: np.ndarray,
                            rtol: float = 1e-5, atol: float = 1e-5) -> None:
    """Distances must match the reference (Dijkstra) up to FP noise,
    including the +inf pattern for unreachable vertices.

    Default tolerances admit single-precision edge weights (GraphMat
    stores float32 values in its binary matrix format) while still
    rejecting any wrong-path result, which differs by whole weight
    magnitudes."""
    dist = np.asarray(dist, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if dist.shape != reference.shape:
        raise ValidationError("distance array has wrong length")
    finite = np.isfinite(reference)
    if not np.array_equal(np.isfinite(dist), finite):
        raise ValidationError("reachability pattern differs from reference")
    if finite.any() and not np.allclose(
            dist[finite], reference[finite], rtol=rtol, atol=atol):
        worst = np.abs(dist[finite] - reference[finite]).max()
        raise ValidationError(f"distances deviate from Dijkstra by {worst:g}")


def validate_pagerank(rank: np.ndarray, reference: np.ndarray,
                      tol: float = 1e-4) -> None:
    """Ranks must be a probability vector close to the reference.

    Tolerance is loose on purpose: the paper's systems legitimately differ
    in stopping criteria, so only gross disagreement is an error.
    """
    rank = np.asarray(rank, dtype=np.float64)
    if rank.shape != np.asarray(reference).shape:
        raise ValidationError("rank array has wrong length")
    if np.any(rank < -1e-12):
        raise ValidationError("negative PageRank value")
    total = rank.sum()
    if not np.isclose(total, 1.0, atol=1e-3):
        raise ValidationError(f"PageRank mass {total:g} is not ~1")
    err = np.abs(rank - reference).sum()
    if err > tol:
        raise ValidationError(f"PageRank L1 error {err:g} exceeds {tol:g}")
