"""Preallocated per-graph scratch buffers for the frontier kernels.

Every per-round frontier primitive in :mod:`repro.graph.frontier` needs
working memory proportional to either the gathered edge count or the
vertex count.  Allocating those temporaries fresh each round -- what the
five systems did independently before the shared library -- costs a
page-faulting ``malloc`` per array per round on large graphs.  A
:class:`KernelScratch` owns one growable edge-sized integer arena plus a
set of named vertex-sized arrays and hands out views, so steady-state
rounds perform zero allocations.

Scratch is *per graph object*: :func:`scratch_for` memoizes one
:class:`KernelScratch` per structure (CSR, DCSR, GAP graph pair, GAS
engine, ...) in a :class:`weakref.WeakKeyDictionary`, so buffers die
with the graph and two graphs never share (or race on) an arena.

Bit-identity note: scratch only changes *where* intermediates live,
never their values.  Mask buffers are handed out all-``False`` and the
frontier primitives reset exactly the entries they touched, keeping the
clear cost proportional to the round's work instead of ``n``.

The module-level :data:`COUNTERS` aggregate gathered edges and buffer
reuse; :meth:`~repro.systems.base.GraphSystem.run` drains them into the
live :class:`~repro.observability.metrics.MetricsRegistry` with
``log=False`` after each kernel (the cache-counter rule: in-process
visibility without perturbing ``events.jsonl``).
"""

from __future__ import annotations

import weakref

import numpy as np

__all__ = ["KernelScratch", "scratch_for", "consume_counters", "COUNTERS"]

#: Live kernel counters, drained by ``GraphSystem.run`` after each
#: kernel execution (see :func:`consume_counters`).
COUNTERS = {"gather_edges": 0.0, "scratch_reuse": 0.0}


def consume_counters() -> dict:
    """Return the counters accumulated since the last call and reset.

    Returns a plain ``{name: float}`` dict; the caller decides where the
    numbers go (the systems layer feeds them to the tracer registry).
    """
    out = dict(COUNTERS)
    for k in COUNTERS:
        COUNTERS[k] = 0.0
    return out


class KernelScratch:
    """Reusable working memory for one graph's frontier kernels.

    Parameters
    ----------
    n_vertices:
        Sizes the named vertex arrays (claim buffer, dedup masks).
    n_edges:
        Initial capacity of the edge arena (it grows geometrically if a
        gather ever exceeds it, e.g. on a symmetrized view).
    """

    def __init__(self, n_vertices: int, n_edges: int = 0):
        self.n = int(n_vertices)
        self._edge_buf = np.empty(max(int(n_edges), 1), dtype=np.int64)
        self._seg_buf = np.empty(self.n + 1, dtype=np.int64)
        self._vertex_i64: dict[str, np.ndarray] = {}
        self._vertex_bool: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def edge_i64(self, size: int) -> np.ndarray:
        """An ``int64[size]`` view of the edge arena (contents garbage)."""
        if size > self._edge_buf.size:
            cap = max(size, 2 * self._edge_buf.size)
            self._edge_buf = np.empty(cap, dtype=np.int64)
        else:
            COUNTERS["scratch_reuse"] += 1.0
        return self._edge_buf[:size]

    def seg_i64(self, size: int) -> np.ndarray:
        """An ``int64[size]`` view for per-segment offsets (``size`` is
        bounded by the frontier length, itself bounded by ``n + 1``)."""
        if size > self._seg_buf.size:
            self._seg_buf = np.empty(size, dtype=np.int64)
        else:
            COUNTERS["scratch_reuse"] += 1.0
        return self._seg_buf[:size]

    def vertex_i64(self, name: str = "claim") -> np.ndarray:
        """A named ``int64[n]`` array (contents garbage)."""
        buf = self._vertex_i64.get(name)
        if buf is None:
            buf = np.empty(self.n, dtype=np.int64)
            self._vertex_i64[name] = buf
        else:
            COUNTERS["scratch_reuse"] += 1.0
        return buf

    def mask(self, name: str = "dedup") -> np.ndarray:
        """A named ``bool[n]`` array, guaranteed all-``False``.

        Callers (the frontier primitives) must reset every entry they
        set before returning, which keeps the clear proportional to the
        touched set.  :meth:`release_mask` does that given the touched
        ids.
        """
        buf = self._vertex_bool.get(name)
        if buf is None:
            buf = np.zeros(self.n, dtype=bool)
            self._vertex_bool[name] = buf
        else:
            COUNTERS["scratch_reuse"] += 1.0
        return buf

    @staticmethod
    def release_mask(mask: np.ndarray, touched: np.ndarray) -> None:
        """Re-clear a mask given the ids that were set."""
        mask[touched] = False


#: One scratch per live graph structure, keyed by ``id`` (the graph
#: dataclasses hold ndarrays, so they are unhashable and cannot key a
#: ``WeakKeyDictionary``); a finalizer evicts the entry when the graph
#: dies, before its id can be recycled.
_SCRATCHES: dict[int, KernelScratch] = {}


def scratch_for(obj: object, n_vertices: int,
                n_edges: int = 0) -> KernelScratch:
    """The memoized :class:`KernelScratch` for ``obj``.

    ``obj`` is any weakref-able structure whose lifetime should bound
    the buffers' (a :class:`~repro.graph.csr.CSRGraph`, a GAP graph
    pair, a GAS engine...).  Repeated kernels on the same graph share
    one arena; the first call sizes it.
    """
    key = id(obj)
    scratch = _SCRATCHES.get(key)
    if scratch is None or scratch.n != int(n_vertices):
        scratch = KernelScratch(n_vertices, n_edges)
        try:
            weakref.finalize(obj, _SCRATCHES.pop, key, None)
        except TypeError:
            # Un-weakref-able host (e.g. a SimpleNamespace test shim):
            # hand back a fresh scratch without memoizing -- caching it
            # with no finalizer would outlive the host and could collide
            # with a recycled id.
            return scratch
        _SCRATCHES[key] = scratch
    return scratch
