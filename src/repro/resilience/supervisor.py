"""Per-cell supervision: attempts, backoff, quarantine.

:class:`CellSupervisor` wraps each Runner cell the way the paper's
shell wrapper wraps each native binary: it launches the attempt,
applies any injected fault, catches *framework* failures
(:class:`~repro.errors.ReproError` -- never programming errors), sleeps
a jittered exponential backoff on the simulated harness clock, and
after the retry budget is exhausted records a quarantine instead of
raising.  One bad cell can therefore never discard the rest of a
suite, exactly like one PowerGraph-without-BFS hole never discarded
the paper's evaluation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CellTimeoutError, ReproError
from repro.logging_util import get_logger
from repro.machine.clock import SimulatedClock
from repro.machine.variance import VarianceModel
from repro.observability import Tracer
from repro.resilience.faults import FaultInjector, InjectedCrashError
from repro.resilience.retry import AttemptRecord, RetryPolicy

__all__ = ["CellOutcome", "CellSupervisor", "cell_id",
           "request_drain", "drain_requested", "reset_drain"]

#: Process-wide drain flag: set when the process has been asked to shut
#: down gracefully (SIGTERM, service drain).  A draining supervisor
#: stops *retrying* -- the in-flight attempt finishes, but a failure
#: quarantines immediately instead of burning backoff time the process
#: no longer has.
_DRAIN = threading.Event()


def request_drain() -> None:
    """Ask every supervisor in this process to stop scheduling retries."""
    _DRAIN.set()


def drain_requested() -> bool:
    return _DRAIN.is_set()


def reset_drain() -> None:
    """Clear the process-wide drain flag (tests, daemon restart)."""
    _DRAIN.clear()


def cell_id(system: str, algorithm: str, n_threads: int) -> str:
    return f"{system}/{algorithm}/t{n_threads}"


@dataclass(frozen=True)
class CellOutcome:
    """Final state of one (system, algorithm, threads) cell."""

    cell: str
    #: "completed" | "unsupported" | "quarantined"
    status: str
    #: Log path relative to the experiment dir (completed cells only).
    log: str | None
    attempts: tuple[AttemptRecord, ...]

    @property
    def failed_attempts(self) -> tuple[AttemptRecord, ...]:
        return tuple(a for a in self.attempts if a.status != "ok")

    def to_dict(self) -> dict:
        return {"cell": self.cell, "status": self.status, "log": self.log,
                "attempts": [a.to_dict() for a in self.attempts]}

    @staticmethod
    def from_dict(d: dict) -> "CellOutcome":
        return CellOutcome(
            cell=d["cell"], status=d["status"], log=d.get("log"),
            attempts=tuple(AttemptRecord.from_dict(a)
                           for a in d.get("attempts", ())))


class CellSupervisor:
    """Runs one cell under the retry policy, recording every attempt."""

    def __init__(self, runner, policy: RetryPolicy,
                 injector: FaultInjector | None = None,
                 drain: threading.Event | None = None):
        self.runner = runner
        self.policy = policy
        self.injector = injector
        #: Drain signal consulted between attempts; defaults to the
        #: process-wide flag (:func:`request_drain`).
        self.drain = drain if drain is not None else _DRAIN
        self.variance = VarianceModel(runner.config.seed)
        self._log = get_logger("repro.resilience")

    # ------------------------------------------------------------------
    def _backoff_s(self, system: str, algorithm: str, n_threads: int,
                   attempt: int) -> float:
        nominal = self.policy.nominal_backoff_s(attempt)
        return self.variance.jitter(
            nominal, ("backoff", system, algorithm, n_threads, attempt))

    # ------------------------------------------------------------------
    def run_cell(self, system: str, algorithm: str,
                 n_threads: int) -> CellOutcome:
        """Run one cell to a terminal outcome; never raises ReproError."""
        cid = cell_id(system, algorithm, n_threads)
        tracer = getattr(self.runner, "tracer", None) or Tracer()
        machine = self.runner.config.machine
        # Harness-side timeline for this cell: attempt windows and
        # backoff sleeps, all simulated, all starting at 0 so records
        # are identical whether the cell ran first or after a resume.
        clock = SimulatedClock(idle_pkg_watts=machine.idle_pkg_watts,
                               idle_dram_watts=machine.idle_dram_watts)
        tracer.bind_clock(clock)
        attempts: list[AttemptRecord] = []
        with tracer.span(f"cell:{cid}", category="cell", system=system,
                         algorithm=algorithm,
                         n_threads=n_threads) as cell_sp:
            for attempt in range(self.policy.max_attempts):
                fault = None
                if self.injector is not None:
                    fault = self.injector.fault_for(system, algorithm,
                                                    n_threads, attempt)
                    if fault is not None and fault.kind == "hang":
                        # A hang is only observed at the deadline.
                        fault = type(fault)(kind="hang",
                                            seconds=self.policy.timeout_s)
                started = clock.now
                failure = None
                path = None
                # Every attempt is a sibling span under the cell span;
                # failed ones carry the failure reason as an attribute.
                with tracer.span(f"attempt:{attempt}", category="attempt",
                                 cell=cid, retry_index=attempt) as asp:
                    try:
                        path = self.runner.run_system_algorithm(
                            system, algorithm, n_threads, fault=fault)
                    except (InjectedCrashError, CellTimeoutError,
                            ReproError) as exc:
                        clock.advance(self.runner.last_cell_seconds)
                        status = (
                            "timeout" if isinstance(exc, CellTimeoutError)
                            else "crash"
                            if isinstance(exc, InjectedCrashError)
                            else "error")
                        failure = (exc, status)
                        asp.set(status=status,
                                failure_reason=f"{type(exc).__name__}: "
                                               f"{exc}")
                    else:
                        clock.advance(self.runner.last_cell_seconds)
                        asp.set(status="ok" if path is not None
                                else "unsupported")
                if failure is not None:
                    exc, status = failure
                    tracer.counter("epg_attempts_total", system=system,
                                   algorithm=algorithm, status=status)
                    # A draining supervisor spends no more attempts on
                    # this cell: the failure goes straight to quarantine
                    # (recorded exactly once, below -- both exits share
                    # the single trailing quarantine block).
                    draining = self.drain.is_set()
                    backoff = None
                    if attempt + 1 < self.policy.max_attempts \
                            and not draining:
                        backoff = self._backoff_s(system, algorithm,
                                                  n_threads, attempt)
                    attempts.append(AttemptRecord(
                        attempt=attempt, status=status,
                        error=f"{type(exc).__name__}: {exc}",
                        started_s=started, ended_s=clock.now,
                        backoff_s=backoff))
                    if backoff is not None:
                        clock.advance(backoff)  # idle: the harness sleeps
                        tracer.counter("epg_retries_total", system=system,
                                       algorithm=algorithm)
                        tracer.counter("epg_backoff_seconds_total",
                                       inc=backoff, system=system,
                                       algorithm=algorithm)
                        self._log.info(
                            "retrying %s after %s (backoff %.3fs)",
                            cid, type(exc).__name__, backoff)
                        continue
                    if draining and attempt + 1 < self.policy.max_attempts:
                        self._log.warning(
                            "draining: %s quarantined without its %d "
                            "remaining retr%s", cid,
                            self.policy.max_attempts - attempt - 1,
                            "y" if self.policy.max_attempts
                            - attempt - 1 == 1 else "ies")
                        cell_sp.set(drained=True)
                    break
                if path is None:
                    # Capability hole, not a failure: no retry, no
                    # attempt spent -- the paper's PowerGraph-has-no-BFS
                    # case.
                    cell_sp.set(status="unsupported")
                    tracer.counter("epg_cells_total", status="unsupported")
                    return CellOutcome(cell=cid, status="unsupported",
                                       log=None, attempts=())
                tracer.counter("epg_attempts_total", system=system,
                               algorithm=algorithm, status="ok")
                attempts.append(AttemptRecord(
                    attempt=attempt, status="ok", error=None,
                    started_s=started, ended_s=clock.now))
                rel = Path(path).relative_to(
                    self.runner.config.output_dir).as_posix()
                cell_sp.set(status="completed")
                tracer.counter("epg_cells_total", status="completed")
                return CellOutcome(cell=cid, status="completed", log=rel,
                                   attempts=tuple(attempts))
            self._log.warning("quarantining %s after %d attempt(s)",
                              cid, len(attempts))
            cell_sp.set(status="quarantined")
            tracer.counter("epg_quarantines_total", system=system,
                           algorithm=algorithm)
            tracer.counter("epg_cells_total", status="quarantined")
            return CellOutcome(cell=cid, status="quarantined", log=None,
                               attempts=tuple(attempts))
