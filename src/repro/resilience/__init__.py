"""Resilient suite execution.

The paper's harness (EPG*) exists because benchmarking five
independent systems is messy: capabilities are missing, runs crash or
hang, logs come back damaged.  This subpackage gives the reproduction
the same tolerance, deterministically:

* :mod:`~repro.resilience.faults` -- seed-driven fault injection
  (crash / hang / corrupt-log) so every failure path is testable;
* :mod:`~repro.resilience.retry` -- retry policy (bounded attempts,
  capped exponential backoff with seeded jitter, per-attempt deadline)
  and structured :class:`AttemptRecord`\\ s;
* :mod:`~repro.resilience.supervisor` -- wraps each Runner cell,
  records every attempt, quarantines instead of raising;
* :mod:`~repro.resilience.checkpoint` -- atomic per-experiment
  ``checkpoint.json`` manifests enabling skip-completed reruns and
  ``epg resume``.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_NAME,
    SuiteCheckpoint,
    config_digest,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    Fault,
    FaultInjector,
    FaultRule,
    InjectedCrashError,
    corrupt_log,
    parse_fault_spec,
)
from repro.resilience.retry import (
    DEFAULT_CELL_TIMEOUT_S,
    AttemptRecord,
    RetryPolicy,
)
from repro.resilience.supervisor import (
    CellOutcome,
    CellSupervisor,
    cell_id,
    drain_requested,
    request_drain,
    reset_drain,
)

__all__ = [
    "AttemptRecord", "CellOutcome", "CellSupervisor", "CHECKPOINT_NAME",
    "DEFAULT_CELL_TIMEOUT_S", "FAULT_KINDS", "Fault", "FaultInjector",
    "FaultRule", "InjectedCrashError", "RetryPolicy", "SuiteCheckpoint",
    "cell_id", "config_digest", "corrupt_log", "drain_requested",
    "parse_fault_spec", "request_drain", "reset_drain",
]
