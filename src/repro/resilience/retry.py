"""Retry policy and structured attempt records.

The policy mirrors what every mature benchmark harness (LDBC
Graphalytics, GAP's per-trial isolation) converges on: a bounded number
of attempts per cell, exponential backoff between attempts so a
transiently overloaded machine gets quiet time, and a per-attempt
deadline after which a hung run is declared dead.  Backoff *jitter* is
drawn from the seeded :class:`~repro.machine.variance.VarianceModel`,
so the full attempt timeline -- like every other duration in this
reproduction -- is deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["RetryPolicy", "AttemptRecord", "DEFAULT_CELL_TIMEOUT_S"]

#: Per-attempt deadline when the config leaves ``cell_timeout_s`` unset.
#: Generous: at bench scales no healthy simulated cell comes close.
DEFAULT_CELL_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped exponential backoff."""

    max_attempts: int = 3
    base_backoff_s: float = 0.5
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    timeout_s: float = DEFAULT_CELL_TIMEOUT_S

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("backoff durations must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.timeout_s <= 0:
            raise ConfigError("timeout_s must be positive")

    @staticmethod
    def from_config(config) -> "RetryPolicy":
        """Derive the policy from an ExperimentConfig's knobs."""
        return RetryPolicy(
            max_attempts=config.max_retries + 1,
            timeout_s=(config.cell_timeout_s
                       if config.cell_timeout_s is not None
                       else DEFAULT_CELL_TIMEOUT_S))

    def nominal_backoff_s(self, attempt: int) -> float:
        """Backoff scheduled after failed attempt ``attempt`` (0-based),
        before jitter."""
        return min(self.base_backoff_s * self.backoff_factor ** attempt,
                   self.max_backoff_s)


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of one cell, as written to ``checkpoint.json``.

    Times are simulated harness-clock seconds, cell-relative (the first
    attempt starts at 0.0), so records survive resume unchanged.
    """

    attempt: int
    #: "ok" | "crash" | "timeout" | "error"
    status: str
    #: ``"ErrorType: message"`` for failed attempts, else None.
    error: str | None
    started_s: float
    ended_s: float
    #: Backoff slept after this (failed) attempt; None when no retry
    #: follows.
    backoff_s: float | None = None

    @property
    def duration_s(self) -> float:
        return self.ended_s - self.started_s

    def to_dict(self) -> dict:
        return {"attempt": self.attempt, "status": self.status,
                "error": self.error, "started_s": self.started_s,
                "ended_s": self.ended_s, "backoff_s": self.backoff_s}

    @staticmethod
    def from_dict(d: dict) -> "AttemptRecord":
        return AttemptRecord(
            attempt=int(d["attempt"]), status=d["status"],
            error=d.get("error"), started_s=float(d["started_s"]),
            ended_s=float(d["ended_s"]),
            backoff_s=(float(d["backoff_s"])
                       if d.get("backoff_s") is not None else None))
