"""Deterministic, seed-driven fault injection.

The paper's harness had to survive benchmarking reality: runs that
crash, hang at high thread counts, or leave half-written logs behind.
Those paths are untestable unless failures can be *provoked on
purpose*, reproducibly.  A :class:`FaultInjector` does exactly that:
given a fault spec and the experiment seed, it decides -- identically
on every run -- whether a given (system, algorithm, threads) cell's
N-th attempt crashes, hangs past its deadline, or completes but leaves
a corrupted log line behind.  Fault costs are priced on the cell's
:class:`~repro.machine.clock.SimulatedClock` like every other duration
in the machine model.

Fault spec grammar (one string, CLI- and JSON-friendly)::

    spec      := clause (";" clause)*
    clause    := system "/" algorithm "/" threads ":" kind ["@" prob] [":" count]
    system    := name | "*"
    algorithm := name | "*"
    threads   := "t" int | "*"
    kind      := "crash" | "hang" | "corrupt"
    prob      := float in (0, 1]      (per-attempt firing probability)
    count     := int                  (only the first N attempts fault)

Examples::

    gap/bfs/t32:crash:2      # first two attempts of gap/bfs at 32 threads crash
    graphmat/*/*:hang        # every graphmat attempt hangs (permanent)
    */bfs/*:crash@0.25       # each BFS attempt crashes with seeded prob 0.25

The first matching clause wins.  A clause with neither ``prob`` nor
``count`` faults every attempt -- a permanent failure that will drive
the cell into quarantine.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigError, ReproError

__all__ = ["FAULT_KINDS", "Fault", "FaultRule", "FaultInjector",
           "InjectedCrashError", "parse_fault_spec", "corrupt_log"]

FAULT_KINDS = ("crash", "hang", "corrupt")


class InjectedCrashError(ReproError):
    """A cell attempt was killed by an injected crash fault."""


@dataclass(frozen=True)
class Fault:
    """One concrete fault to apply to one cell attempt."""

    kind: str
    #: Simulated seconds consumed before the failure is observed (for a
    #: hang, the supervisor substitutes the cell deadline).
    seconds: float = 0.0


@dataclass(frozen=True)
class FaultRule:
    """One parsed clause of a fault spec."""

    system: str
    algorithm: str
    threads: int | None          # None = wildcard
    kind: str
    attempts: int | None = None  # fault only the first N attempts
    probability: float | None = None

    def matches(self, system: str, algorithm: str, threads: int) -> bool:
        return ((self.system in ("*", system))
                and (self.algorithm in ("*", algorithm))
                and (self.threads is None or self.threads == threads))


def parse_fault_spec(spec: str) -> tuple[FaultRule, ...]:
    """Parse a fault spec string; raises :class:`ConfigError` on bad input."""
    rules: list[FaultRule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) not in (2, 3):
            raise ConfigError(
                f"fault clause {clause!r}: want cell:kind[:count]")
        cell = parts[0].split("/")
        if len(cell) != 3:
            raise ConfigError(
                f"fault clause {clause!r}: cell must be "
                "system/algorithm/threads")
        system, algorithm, tpart = (c.strip() for c in cell)
        if tpart == "*":
            threads: int | None = None
        elif tpart.startswith("t") and tpart[1:].isdigit():
            threads = int(tpart[1:])
        else:
            raise ConfigError(
                f"fault clause {clause!r}: threads must be t<int> or *")
        kind_part = parts[1].strip()
        probability: float | None = None
        if "@" in kind_part:
            kind, _, prob_s = kind_part.partition("@")
            try:
                probability = float(prob_s)
            except ValueError:
                raise ConfigError(
                    f"fault clause {clause!r}: bad probability "
                    f"{prob_s!r}") from None
            if not 0.0 < probability <= 1.0:
                raise ConfigError(
                    f"fault clause {clause!r}: probability must be in "
                    "(0, 1]")
        else:
            kind = kind_part
        if kind not in FAULT_KINDS:
            raise ConfigError(
                f"fault clause {clause!r}: kind must be one of "
                f"{FAULT_KINDS}")
        attempts: int | None = None
        if len(parts) == 3 and parts[2].strip() != "*":
            try:
                attempts = int(parts[2])
            except ValueError:
                raise ConfigError(
                    f"fault clause {clause!r}: bad count "
                    f"{parts[2]!r}") from None
            if attempts < 1:
                raise ConfigError(
                    f"fault clause {clause!r}: count must be >= 1")
        rules.append(FaultRule(system=system, algorithm=algorithm,
                               threads=threads, kind=kind,
                               attempts=attempts, probability=probability))
    if not rules:
        raise ConfigError(f"fault spec {spec!r} contains no clauses")
    return tuple(rules)


class FaultInjector:
    """Decides, deterministically, which cell attempts fault.

    All randomness (probabilistic clauses, crash-point timing) is keyed
    by the experiment seed plus the full attempt identity, exactly like
    :class:`~repro.machine.variance.VarianceModel`: two runs with the
    same seed and spec inject byte-identical faults.
    """

    def __init__(self, seed: int, spec: str | tuple[FaultRule, ...]):
        self.seed = int(seed)
        self.rules = (parse_fault_spec(spec) if isinstance(spec, str)
                      else tuple(spec))

    # ------------------------------------------------------------------
    def _rng(self, key: tuple) -> np.random.Generator:
        h = hashlib.blake2b(digest_size=16)
        h.update(b"fault")
        h.update(struct.pack("<q", self.seed))
        for part in key:
            h.update(repr(part).encode())
            h.update(b"\x1f")
        return np.random.default_rng(int.from_bytes(h.digest(), "little"))

    # ------------------------------------------------------------------
    def fault_for(self, system: str, algorithm: str, threads: int,
                  attempt: int) -> Fault | None:
        """The fault (if any) for one attempt of one cell."""
        for rule in self.rules:
            if not rule.matches(system, algorithm, threads):
                continue
            if rule.attempts is not None and attempt >= rule.attempts:
                continue
            if rule.probability is not None:
                rng = self._rng(("fire", system, algorithm, threads,
                                 attempt, rule.kind))
                if float(rng.random()) >= rule.probability:
                    continue
            # How far into the run the failure strikes: a seeded draw,
            # so the partial clock advance is itself reproducible.
            cost = self._rng(("cost", system, algorithm, threads,
                              attempt, rule.kind))
            seconds = float(cost.uniform(0.05, 0.75))
            return Fault(kind=rule.kind, seconds=seconds)
        return None


def corrupt_log(path: str | Path, seed: int) -> int:
    """Deterministically damage one line of a written log file.

    Models a run whose process died mid-``fwrite``: one line (chosen by
    a seeded draw keyed on the file name) is truncated and smeared with
    garbage.  Returns the damaged line's index.  Damaging the header
    (index 0) makes the whole file unusable -- the salvage path in
    :func:`repro.core.logs.parse_all_logs` must then skip the file;
    damaging any other line costs at most that one record.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    h = hashlib.blake2b(digest_size=8)
    h.update(struct.pack("<q", int(seed)))
    h.update(path.name.encode())
    rng = np.random.default_rng(int.from_bytes(h.digest(), "little"))
    idx = int(rng.integers(0, len(lines)))
    keep = max(1, len(lines[idx]) // 2)
    lines[idx] = lines[idx][:keep] + "\x00###CORRUPT###"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return idx
