"""Per-experiment checkpoint manifests (``checkpoint.json``).

One manifest per experiment directory records the terminal outcome of
every cell the run phase has finished with -- completed, unsupported,
or quarantined -- plus the full attempt history.  The manifest is
rewritten atomically after every cell, so killing a run at any instant
loses at most the in-flight cell; a rerun (or ``epg resume``) skips
everything already recorded and produces byte-identical downstream
artifacts, because every cell is deterministic given the seed.

A manifest is bound to its configuration by digest: rerunning the same
directory with a different config silently starts a fresh manifest
(the old outcomes would not be comparable), while a *corrupt* manifest
raises :class:`~repro.errors.CheckpointError` -- silent data loss is
exactly what this subsystem exists to prevent.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import CellQuarantinedError, CheckpointError
from repro.ioutil import atomic_write_json
from repro.logging_util import get_logger
from repro.resilience.supervisor import CellOutcome

__all__ = ["CHECKPOINT_NAME", "SuiteCheckpoint", "config_digest"]

CHECKPOINT_NAME = "checkpoint.json"
_VERSION = 1


def config_digest(config) -> str:
    """Stable digest of everything that affects cell outcomes."""
    d = config.to_dict()
    d.pop("output_dir", None)   # moving a directory must not invalidate it
    payload = json.dumps(d, sort_keys=True).encode()
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


class SuiteCheckpoint:
    """The run phase's persistent cell ledger for one experiment dir."""

    def __init__(self, directory: str | Path, digest: str,
                 cells: dict[str, CellOutcome] | None = None):
        self.directory = Path(directory)
        self.digest = digest
        self.cells: dict[str, CellOutcome] = dict(cells or {})

    @property
    def path(self) -> Path:
        return self.directory / CHECKPOINT_NAME

    # ------------------------------------------------------------------
    @classmethod
    def load_or_create(cls, directory: str | Path,
                       config) -> "SuiteCheckpoint":
        """Load the directory's manifest, or start a fresh one.

        A manifest whose config digest differs from ``config`` is
        discarded (logged): the caller changed the experiment, so prior
        outcomes no longer apply.  A manifest that cannot be parsed
        raises :class:`CheckpointError`.
        """
        directory = Path(directory)
        digest = config_digest(config)
        path = directory / CHECKPOINT_NAME
        if not path.exists():
            return cls(directory, digest)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
            if raw.get("version") != _VERSION:
                raise CheckpointError(
                    f"{path}: unsupported checkpoint version "
                    f"{raw.get('version')!r}")
            cells = {k: CellOutcome.from_dict(v)
                     for k, v in raw.get("cells", {}).items()}
            stored_digest = raw["config_digest"]
        except CheckpointError:
            raise
        except (json.JSONDecodeError, KeyError, TypeError,
                ValueError) as exc:
            raise CheckpointError(
                f"{path}: corrupt checkpoint manifest ({exc})") from exc
        if stored_digest != digest:
            get_logger("repro.resilience").info(
                "%s: config changed; starting a fresh checkpoint", path)
            return cls(directory, digest)
        return cls(directory, digest, cells)

    # ------------------------------------------------------------------
    def record(self, outcome: CellOutcome) -> None:
        """Record one cell outcome and persist the manifest atomically."""
        self.cells[outcome.cell] = outcome
        self.save()

    def save(self) -> Path:
        return atomic_write_json(self.path, {
            "version": _VERSION,
            "config_digest": self.digest,
            "cells": {k: v.to_dict() for k, v in sorted(self.cells.items())},
        }, sort_keys=True)

    # ------------------------------------------------------------------
    def get(self, cell: str) -> CellOutcome | None:
        return self.cells.get(cell)

    def quarantined(self) -> list[CellOutcome]:
        return [o for o in self.cells.values() if o.status == "quarantined"]

    def log_path_for(self, cell: str) -> Path:
        """Absolute log path of a completed cell.

        Raises :class:`CellQuarantinedError` for quarantined cells and
        :class:`CheckpointError` for unknown/unsupported ones.
        """
        outcome = self.cells.get(cell)
        if outcome is None:
            raise CheckpointError(f"{self.path}: no outcome for {cell}")
        if outcome.status == "quarantined":
            raise CellQuarantinedError(
                f"{cell}: quarantined after "
                f"{len(outcome.attempts)} attempt(s)")
        if outcome.log is None:
            raise CheckpointError(f"{cell}: no log recorded "
                                  f"(status {outcome.status})")
        return self.directory / outcome.log

    # ------------------------------------------------------------------
    @staticmethod
    def clear(directory: str | Path) -> None:
        """Delete a directory's manifest (fresh-run semantics)."""
        path = Path(directory) / CHECKPOINT_NAME
        if path.exists():
            path.unlink()

    @staticmethod
    def scan_quarantined(root: str | Path) -> list[str]:
        """All quarantined cells under ``root`` (any depth), as
        ``subdir:cell`` labels -- the CLI's degraded-completion check."""
        root = Path(root)
        out: list[str] = []
        for path in sorted(root.rglob(CHECKPOINT_NAME)):
            try:
                raw = json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError):
                continue
            rel = path.parent.relative_to(root).as_posix()
            prefix = "" if rel == "." else f"{rel}:"
            for cell, entry in sorted(raw.get("cells", {}).items()):
                if entry.get("status") == "quarantined":
                    out.append(prefix + cell)
        return out
