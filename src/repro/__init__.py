"""easy-parallel-graph-* -- reproduction of Pollard & Norris (2017).

Top-level convenience exports; see the subpackages for the full API:

* :mod:`repro.core` -- the five-phase comparison harness
* :mod:`repro.systems` -- the five reimplemented graph systems
* :mod:`repro.datasets` -- generators, formats, homogenization
* :mod:`repro.algorithms` -- reference kernels (correctness oracles)
* :mod:`repro.machine` / :mod:`repro.power` -- the simulated platform
* :mod:`repro.graphalytics` -- the comparator (flaw included)
* :mod:`repro.graphblas` -- kernel building blocks (Sec. V)
* :mod:`repro.viz` -- SVG figure rendering
"""

__version__ = "1.0.0"

#: The paper this repository reproduces.
PAPER = ("Pollard & Norris, 'A Comparison of Parallel Graph Processing "
         "Implementations', IEEE CLUSTER 2017 (arXiv:1704.02003)")


def run_comparison(*args, **kwargs):
    """Lazy alias for :func:`repro.core.api.run_comparison`."""
    from repro.core.api import run_comparison as _rc

    return _rc(*args, **kwargs)


__all__ = ["__version__", "PAPER", "run_comparison"]
