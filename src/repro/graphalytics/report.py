"""Graphalytics output: the Tables I/II layout and the Fig 7 HTML page.

"Graphalytics generates an HTML report listing the runtimes for each
dataset and each algorithm" -- one page per software package (Fig 7
caption).  :func:`render_table` prints the paper's tabulation of those
reports; :func:`render_html_report` writes the page itself.
"""

from __future__ import annotations

from pathlib import Path

from repro.graphalytics.harness import (
    GRAPHALYTICS_ALGORITHMS,
    GraphalyticsResult,
)

__all__ = ["render_table", "render_html_report"]

_ALGO_HEADERS = {"bfs": "BFS", "cdlp": "CDLP", "lcc": "LCC",
                 "pagerank": "PR", "sssp": "SSSP", "wcc": "WCC"}
_PLATFORM_HEADERS = {"graphbig": "GraphBIG", "powergraph": "PowerGraph",
                     "graphmat": "GraphMat"}


def render_table(results: list[GraphalyticsResult],
                 title: str = "Graphalytics: tabulated sample run times "
                              "(seconds)") -> str:
    """The Table I / Table II layout: one block per platform, one row per
    dataset, one column per algorithm."""
    cells: dict[tuple[str, str, str], GraphalyticsResult] = {
        (r.platform, r.dataset, r.algorithm): r for r in results}
    platforms = sorted({r.platform for r in results},
                       key=lambda p: list(_PLATFORM_HEADERS).index(p)
                       if p in _PLATFORM_HEADERS else 99)
    datasets = sorted({r.dataset for r in results})
    algorithms = [a for a in GRAPHALYTICS_ALGORITHMS
                  if any(r.algorithm == a for r in results)]

    out = [title]
    for platform in platforms:
        header = _PLATFORM_HEADERS.get(platform, platform)
        row0 = f"{header:<14}" + "".join(
            f"{_ALGO_HEADERS.get(a, a.upper()):>9}" for a in algorithms)
        out.append(row0)
        for ds in datasets:
            row = f"{ds:<14}"
            for a in algorithms:
                r = cells.get((platform, ds, a))
                row += f"{r.display if r else '-':>9}"
            out.append(row)
        out.append("")
    return "\n".join(out).rstrip()


def render_html_report(results: list[GraphalyticsResult],
                       out_dir: str | Path) -> list[Path]:
    """Write one HTML page per platform (the Fig 7 artifact)."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    platforms = sorted({r.platform for r in results})
    for platform in platforms:
        rows = [r for r in results if r.platform == platform]
        datasets = sorted({r.dataset for r in rows})
        algorithms = [a for a in GRAPHALYTICS_ALGORITHMS
                      if any(r.algorithm == a for r in rows)]
        cells = {(r.dataset, r.algorithm): r for r in rows}
        html = [
            "<!DOCTYPE html>",
            f"<html><head><title>Graphalytics report: {platform}"
            "</title></head><body>",
            f"<h1>Benchmark report &mdash; "
            f"{_PLATFORM_HEADERS.get(platform, platform)}</h1>",
            "<p>LDBC Graphalytics v0.3 (simulated). One run per "
            "experiment.</p>",
            "<table border='1'><tr><th>dataset</th>",
        ]
        html += [f"<th>{_ALGO_HEADERS.get(a, a)}</th>" for a in algorithms]
        html.append("</tr>")
        for ds in datasets:
            html.append(f"<tr><td>{ds}</td>")
            for a in algorithms:
                r = cells.get((ds, a))
                html.append(f"<td>{r.display if r else '-'}</td>")
            html.append("</tr>")
        html.append("</table></body></html>")
        path = out_dir / f"report-{platform}.html"
        path.write_text("\n".join(html), encoding="utf-8")
        paths.append(path)
    return paths
