"""A faithful simulation of Graphalytics v0.3 (the comparator).

The paper (Sec. II) contrasts EPG* with LDBC Graphalytics, whose
methodology it criticizes on specific, mechanical grounds that this
package reproduces exactly:

* **one run per experiment** -- "Just one run per experiment is
  performed" (Table I caption), so no distributions, no outlier control;
* **inconsistent timing hooks** -- each platform driver wraps a
  different span of execution: the GraphMat driver's reported time
  includes reading the input file from disk and building the matrix,
  the GraphBIG driver's does not, and the PowerGraph driver includes
  graph loading plus engine start ("To call this a fair comparison is
  dubious at best", Sec. II);
* **algorithm defaults, not homogenized** -- PageRank runs a fixed
  iteration budget instead of the EPG* epsilon criterion (the source of
  the Table II vs Fig 4 discrepancy the paper explains), and SSSP is
  skipped (``N/A``) on unweighted datasets;
* an **HTML report** of single-trial numbers (Fig 7).

Platforms covered: GraphBIG, PowerGraph, GraphMat -- the three the
paper's Tables I-II run (Graphalytics v0.3 had no GAP or Graph500
drivers).  PowerGraph BFS goes through the driver-supplied
hop-propagation GAS program since the toolkit has none.
"""

from repro.graphalytics.harness import (
    GRAPHALYTICS_ALGORITHMS,
    GRAPHALYTICS_PLATFORMS,
    GraphalyticsHarness,
    GraphalyticsResult,
)
from repro.graphalytics.report import render_html_report, render_table

__all__ = [
    "GraphalyticsHarness",
    "GraphalyticsResult",
    "GRAPHALYTICS_PLATFORMS",
    "GRAPHALYTICS_ALGORITHMS",
    "render_html_report",
    "render_table",
]
