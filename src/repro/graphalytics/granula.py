"""Granula-style fine-grained performance modeling.

Sec. II: "With a plugin to Graphalytics called Granula, one can
explicitly specify a performance model to analyze specific execution
behavior ... This requires in-depth knowledge of the source code and
execution model."  This module is that plugin's shape: a user-declared
*operation tree* (the performance model) that the harness populates
with measured durations, yielding the per-kernel breakdown an HTML
report hides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.graphalytics.harness import GraphalyticsResult

__all__ = ["Operation", "PerformanceModel", "standard_job_model"]


@dataclass
class Operation:
    """One node of the operation tree."""

    name: str
    children: list["Operation"] = field(default_factory=list)
    duration_s: float | None = None

    def child(self, name: str) -> "Operation":
        for c in self.children:
            if c.name == name:
                return c
        raise ConfigError(f"operation {self.name!r} has no child {name!r}")

    def total_s(self) -> float:
        """Measured duration, or the sum of measured children."""
        if self.duration_s is not None:
            return self.duration_s
        return sum(c.total_s() for c in self.children)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        mine = f"{self.total_s():.4f} s" if (
            self.duration_s is not None or self.children) else "?"
        lines = [f"{pad}{self.name}: {mine}"]
        for c in self.children:
            lines.append(c.render(indent + 1))
        return "\n".join(lines)


@dataclass
class PerformanceModel:
    """A declared operation tree plus the attach rules."""

    root: Operation

    def attach(self, result: GraphalyticsResult) -> None:
        """Populate the tree from one Graphalytics cell's breakdown."""
        mapping = {
            "file_read": ("LoadGraph", "ReadFile"),
            "build": ("LoadGraph", "BuildStructure"),
            "load": ("LoadGraph", "BuildStructure"),
            "algorithm": ("ProcessGraph", "ExecuteAlgorithm"),
        }
        for key, (parent, leaf) in mapping.items():
            if key in result.breakdown:
                node = self.root.child(parent).child(leaf)
                node.duration_s = (node.duration_s or 0.0) + \
                    result.breakdown[key]

    def report(self) -> str:
        return self.root.render()

    @classmethod
    def from_trace(cls, events, system: str, algorithm: str,
                   job_name: str | None = None) -> "PerformanceModel":
        """Populate the standard job model mechanically from a trace.

        This is the paper's Granula complaint answered: the operation
        tree that otherwise "requires in-depth knowledge of the source
        code" is filled from the ``phase:*`` spans a traced run
        recorded -- no hand-filled durations.  ``events`` is a parsed
        event list or a path to a run/trace directory.
        """
        from repro.errors import TraceError
        from repro.observability import read_events

        if not isinstance(events, list):
            events = read_events(events)
        sums = {"phase:read": 0.0, "phase:build": 0.0,
                "phase:kernel": 0.0}
        found = False
        for ev in events:
            if ev.get("type") != "span" or ev.get("cat") != "phase":
                continue
            attrs = ev.get("attrs") or {}
            if (attrs.get("system") != system
                    or attrs.get("algorithm") != algorithm):
                continue
            if ev["name"] in sums:
                sums[ev["name"]] += ev["t1_sim"] - ev["t0_sim"]
                found = True
        if not found:
            raise TraceError(
                f"trace holds no phase spans for {system}/{algorithm}")
        model = standard_job_model(job_name
                                   or f"{system}-{algorithm}-trace")
        load = model.root.child("LoadGraph")
        load.child("ReadFile").duration_s = sums["phase:read"]
        load.child("BuildStructure").duration_s = sums["phase:build"]
        model.root.child("ProcessGraph").child(
            "ExecuteAlgorithm").duration_s = sums["phase:kernel"]
        return model


def standard_job_model(job_name: str = "BenchmarkJob") -> PerformanceModel:
    """The canonical Granula job model: load -> process -> cleanup."""
    root = Operation(job_name, children=[
        Operation("LoadGraph", children=[
            Operation("ReadFile"),
            Operation("BuildStructure"),
        ]),
        Operation("ProcessGraph", children=[
            Operation("ExecuteAlgorithm"),
        ]),
        Operation("Cleanup", duration_s=0.0),
    ])
    return PerformanceModel(root=root)


def from_kernel_result(system, loaded, result,
                       job_name: str | None = None) -> PerformanceModel:
    """Build a *fine-grained* model from one EPG* kernel execution.

    This is the level of detail Granula needs in-depth source knowledge
    to reach (Sec. II): per-superstep/level durations under
    ExecuteAlgorithm, apportioned from the kernel's recorded
    :class:`~repro.machine.threads.WorkProfile` through the same cost
    model that priced the total.
    """
    from repro.systems import calibration

    name = job_name or (f"{system.name}-{result.algorithm}-"
                        f"{loaded.name}")
    model = standard_job_model(name)
    model.root.child("LoadGraph").child("ReadFile").duration_s = \
        loaded.read_s
    model.root.child("LoadGraph").child("BuildStructure").duration_s = \
        loaded.build_s or 0.0

    from repro.machine.threads import WorkProfile

    exec_op = model.root.child("ProcessGraph").child("ExecuteAlgorithm")
    costs = calibration.cost_params(system.name, result.algorithm,
                                    system.machine)
    rounds = result.profile.rounds
    if rounds:
        sims = [system.thread_model.simulate(
                    WorkProfile(rounds=[r]), costs,
                    system.n_threads).time_s - costs.startup_s
                for r in rounds]
        total = sum(sims)
        scale = ((result.time_s - costs.startup_s) / total
                 if total > 0 else 0.0)
        exec_op.children.append(
            Operation("EngineStartup", duration_s=costs.startup_s))
        for i, t in enumerate(sims):
            exec_op.children.append(Operation(
                f"Superstep{i}", duration_s=max(t * scale, 0.0)))
    else:
        exec_op.duration_s = result.time_s
    return model
