"""The Graphalytics execution harness (with its timing flaw intact)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.homogenize import HomogenizedDataset
from repro.errors import SystemCapabilityError
from repro.machine.spec import MachineSpec, haswell_server
from repro.machine.variance import VarianceModel
from repro.systems import create_system
from repro.systems.base import KernelResult

__all__ = ["GraphalyticsHarness", "GraphalyticsResult",
           "GRAPHALYTICS_PLATFORMS", "GRAPHALYTICS_ALGORITHMS"]

#: The platforms the paper's Graphalytics runs cover (Tables I-II).
GRAPHALYTICS_PLATFORMS = ("graphbig", "powergraph", "graphmat")

#: Graphalytics' algorithm set and its table column order.
GRAPHALYTICS_ALGORITHMS = ("bfs", "cdlp", "lcc", "pagerank", "sssp", "wcc")

#: Graphalytics runs PageRank and CDLP for fixed iteration budgets
#: (its benchmark spec parameterizes, it does not converge) -- the
#: stopping-criterion difference behind the Table II vs Fig 4
#: discrepancy the paper explains in Sec. IV-A.
PAGERANK_ITERATIONS = 10
CDLP_ITERATIONS = 10


@dataclass
class GraphalyticsResult:
    """One cell of a Graphalytics report: a single-trial makespan."""

    platform: str
    algorithm: str
    dataset: str
    #: The number Graphalytics reports (seconds) -- whatever span the
    #: platform driver happened to wrap.
    reported_s: float
    #: What the span actually contained, for the paper's log-digging.
    breakdown: dict[str, float] = field(default_factory=dict)
    not_available: bool = False
    #: Cell exceeded the benchmark's per-job time budget (Sec. V:
    #: "Graphalytics encountered circumstances with the more
    #: computationally expensive algorithms fail").
    failed: bool = False

    @property
    def display(self) -> str:
        """Paper tables print one decimal; small simulated runs keep
        three significant digits so reduced-scale cells stay readable."""
        if self.not_available:
            return "N/A"
        if self.failed:
            return "F"
        if self.reported_s >= 10:
            return f"{self.reported_s:.1f}"
        return f"{self.reported_s:.3g}"


class GraphalyticsHarness:
    """Runs platform x algorithm cells the Graphalytics way."""

    def __init__(self, machine: MachineSpec | None = None,
                 n_threads: int = 32, seed: int = 3,
                 time_limit_s: float | None = None):
        self.machine = machine or haswell_server()
        self.n_threads = n_threads
        self.seed = seed
        self.variance = VarianceModel(seed)
        #: Per-job wall-clock budget; cells whose makespan exceeds it
        #: are reported failed ("F"), the Sec. V behaviour.
        self.time_limit_s = time_limit_s
        #: (platform, dataset dir) -> (system, LoadedGraph): loads are
        #: deterministic, so each platform ingests a dataset once per
        #: harness instead of once per algorithm cell.
        self._loaded: dict = {}

    # ------------------------------------------------------------------
    def run_cell(self, platform: str, algorithm: str,
                 dataset: HomogenizedDataset) -> GraphalyticsResult:
        """One experiment = one run (the flaw the Table I caption notes)."""
        if platform not in GRAPHALYTICS_PLATFORMS:
            raise SystemCapabilityError(
                f"Graphalytics v0.3 has no {platform!r} driver")
        if algorithm not in GRAPHALYTICS_ALGORITHMS:
            raise SystemCapabilityError(
                f"Graphalytics does not define {algorithm!r}")
        # Graphalytics refuses SSSP on unweighted datasets (Table I's
        # N/A cells; Sec. IV-A notes the same for undirected graphs).
        if algorithm == "sssp" and not dataset.weighted:
            return GraphalyticsResult(
                platform=platform, algorithm=algorithm,
                dataset=dataset.name, reported_s=float("nan"),
                not_available=True)

        system, loaded = self._system_and_loaded(platform, dataset)
        root = int(dataset.roots[0])

        result = self._run_kernel(system, loaded, algorithm, root)
        kernel_s = self._jitter(result.time_s, platform, algorithm,
                                dataset.name, "kernel")

        breakdown = {"algorithm": kernel_s}
        # The platform drivers wrap different spans -- reproduced here.
        if platform == "graphmat":
            # Driver measures the whole GraphMat process: file read +
            # matrix build + engine init + algorithm (Sec. II's example:
            # 6.3 s reported, 2.7 s of it reading dota-league).
            read = self._jitter(loaded.read_s, platform, algorithm,
                                dataset.name, "read")
            build = self._jitter(loaded.build_s or 0.0, platform,
                                 algorithm, dataset.name, "build")
            breakdown.update(file_read=read, build=build)
            reported = read + build + kernel_s
        elif platform == "graphbig":
            # Driver times only the kernel ("does not include the time
            # to read the dota-league file").
            reported = kernel_s
        else:  # powergraph
            # Driver makespan includes graph ingest + engine spin-up.
            load = self._jitter(loaded.read_s, platform, algorithm,
                                dataset.name, "load")
            breakdown.update(load=load)
            reported = load + kernel_s
        failed = (self.time_limit_s is not None
                  and reported > self.time_limit_s)
        return GraphalyticsResult(
            platform=platform, algorithm=algorithm, dataset=dataset.name,
            reported_s=reported, breakdown=breakdown, failed=failed)

    def _system_and_loaded(self, platform: str,
                           dataset: HomogenizedDataset):
        key = (platform, str(dataset.directory))
        hit = self._loaded.get(key)
        if hit is None:
            system = create_system(platform, machine=self.machine,
                                   n_threads=self.n_threads)
            hit = (system, system.load(dataset))
            self._loaded[key] = hit
        return hit

    # ------------------------------------------------------------------
    def run_matrix(self, dataset: HomogenizedDataset,
                   platforms=GRAPHALYTICS_PLATFORMS,
                   algorithms=GRAPHALYTICS_ALGORITHMS, *,
                   pool=None) -> list[GraphalyticsResult]:
        """Tables I-II: every platform x algorithm cell on one dataset.

        With a :class:`repro.parallel.CellPool`, cells fan out to the
        workers and results are gathered in table order -- every cell
        is a pure function of the harness seed, so the tables are
        identical at any job count.
        """
        cells = [(p, a) for p in platforms for a in algorithms]
        if pool is not None and pool.parallel:
            futures = [pool.submit_graphalytics(
                self.machine, self.n_threads, self.seed,
                self.time_limit_s, p, a, dataset) for p, a in cells]
            return [f.result() for f in futures]
        return [self.run_cell(p, a, dataset) for p, a in cells]

    # ------------------------------------------------------------------
    def _run_kernel(self, system, loaded, algorithm: str,
                    root: int) -> KernelResult:
        if algorithm == "bfs" and system.name == "powergraph":
            # The driver-supplied GAS program (no toolkit BFS).
            return system.run_toolkit_extension(loaded, "bfs-hops",
                                                root=root)
        if algorithm == "pagerank":
            # Fixed iteration budget: epsilon=0 disables convergence.
            if system.name == "graphmat":
                return system.run(loaded, algorithm,
                                  max_iterations=PAGERANK_ITERATIONS)
            return system.run(loaded, algorithm, epsilon=0.0,
                              max_iterations=PAGERANK_ITERATIONS)
        if algorithm == "cdlp":
            return system.run(loaded, algorithm,
                              iterations=CDLP_ITERATIONS)
        if algorithm in ("bfs", "sssp"):
            return system.run(loaded, algorithm, root=root)
        return system.run(loaded, algorithm)

    def _jitter(self, seconds: float, *key_parts) -> float:
        return self.variance.jitter(seconds, ("graphalytics",) + key_parts)
