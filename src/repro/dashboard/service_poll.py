"""Poll a live ``epg serve`` daemon for the dashboard's service page.

The poller is deliberately paranoid about the thing it watches:

* A daemon that is down, restarting, or draining yields an *error
  panel*, never an exception -- the console must outlive the service.
* ``/stats`` payloads are versioned
  (:data:`repro.service.daemon.STATS_SCHEMA_VERSION`).  A missing or
  mismatched ``schema_version`` marks the snapshot incompatible and
  the dashboard refuses to render its fields: stale keys silently
  interpreted as zeros are worse than an honest "cannot read this
  daemon".
* ``/metrics`` is parsed with a minimal Prometheus-text reader
  (comments and histogram ``_bucket`` series skipped, values summed
  per metric name across label sets) -- enough for sparklines without
  a client library.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.service.daemon import STATS_SCHEMA_VERSION
from repro.service.manifest import ServedManifest

__all__ = ["ServicePoller", "parse_prometheus_text"]


def parse_prometheus_text(text: str) -> dict[str, float]:
    """``{metric_name: summed_value}`` from Prometheus exposition text.

    Label sets are collapsed by summation and ``_bucket`` series are
    dropped (cumulative buckets would double-count their ``_count``).
    Unparseable lines are skipped: a scrape torn mid-response should
    degrade, not crash the page.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            series, value = line.rsplit(None, 1)
            name = series.split("{", 1)[0]
            if not name or name.endswith("_bucket"):
                continue
            out[name] = out.get(name, 0.0) + float(value)
        except ValueError:
            continue
    return out


class ServicePoller:
    """One daemon's dashboard view: roster, stats, metric history."""

    def __init__(self, url: str, *, data_dir: str | Path | None = None,
                 timeout_s: float = 3.0, history: int = 512):
        self.url = url.rstrip("/")
        self.data_dir = Path(data_dir) if data_dir else None
        self.timeout_s = float(timeout_s)
        self.history_limit = int(history)
        #: ``[{"wall": t, "metrics": {...}}, ...]`` -- appended per poll.
        self.history: list[dict] = []

    # ------------------------------------------------------------------
    def _get(self, path: str) -> bytes:
        with urllib.request.urlopen(self.url + path,
                                    timeout=self.timeout_s) as resp:
            return resp.read()

    def roster(self) -> list[dict]:
        """Served-graph roster from ``served.json``, if a data dir is
        being watched (empty list otherwise -- the /graphs endpoint in
        the snapshot still covers the URL-only case)."""
        if self.data_dir is None:
            return []
        try:
            manifest = ServedManifest.load(self.data_dir)
        except Exception:
            return []
        return [g.to_dict() for g in
                sorted(manifest.graphs.values(), key=lambda g: g.name)]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One self-describing poll of the daemon.

        Always returns a dict with ``reachable`` / ``compatible`` /
        ``error`` fields; ``stats``, ``graphs`` and ``metrics`` are
        only populated when the daemon answered *and* speaks our
        ``/stats`` schema.
        """
        snap: dict = {
            "url": self.url,
            "reachable": False,
            "compatible": False,
            "error": None,
            "stats": None,
            "graphs": [],
            "metrics": {},
            "roster": self.roster(),
        }
        try:
            stats = json.loads(self._get("/stats").decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            snap["error"] = f"daemon unreachable: {exc}"
            return snap
        snap["reachable"] = True

        version = stats.get("schema_version") \
            if isinstance(stats, dict) else None
        if version is None:
            snap["error"] = ("daemon /stats has no schema_version "
                             "(pre-dashboard daemon?) -- refusing to "
                             "render its fields")
            return snap
        if version != STATS_SCHEMA_VERSION:
            snap["error"] = (f"daemon speaks /stats schema {version}, "
                             f"dashboard expects "
                             f"{STATS_SCHEMA_VERSION} -- upgrade one "
                             f"side")
            return snap
        snap["compatible"] = True
        snap["stats"] = stats

        # Best-effort extras: a drain window can close these endpoints
        # while /stats still answers.
        try:
            snap["graphs"] = json.loads(
                self._get("/graphs").decode("utf-8")).get("graphs", [])
        except (urllib.error.URLError, OSError, ValueError):
            pass
        try:
            metrics = parse_prometheus_text(
                self._get("/metrics").decode("utf-8"))
            snap["metrics"] = metrics
            self.history.append({"wall": time.time(),
                                 "metrics": metrics})
            del self.history[:-self.history_limit]
        except (urllib.error.URLError, OSError):
            pass
        return snap
