"""Inline HTML/JS for the dashboard pages.

No template engine, no bundler, no external assets: each page is one
self-contained HTML string with a small script that polls the JSON API
(:mod:`repro.dashboard.server`) every couple of seconds and re-renders
its tables client-side.  Two escaping layers keep user-controlled
strings (run ids, span names, metric labels) inert: everything
interpolated server-side goes through :func:`html.escape` /
``json.dumps``, and everything rendered client-side goes through the
``esc()`` helper before touching ``innerHTML``.
"""

from __future__ import annotations

import html
import json

__all__ = ["index_page", "run_page", "metrics_page", "service_page"]

_REFRESH_MS = 2000

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif;
       margin: 1.5rem; color: #222; }
h1 { font-size: 1.25rem; } h2 { font-size: 1.05rem; margin-top: 1.4rem; }
table { border-collapse: collapse; margin: .6rem 0; }
th, td { border: 1px solid #ccc; padding: .25rem .6rem;
         font-size: .85rem; text-align: left; }
th { background: #f0f0f0; }
code { background: #f5f5f5; padding: 0 .2rem; }
.ok { color: #2e7d32; } .warn { color: #e65100; } .err { color: #c62828; }
.muted { color: #777; font-size: .8rem; }
nav a { margin-right: 1rem; }
svg.spark { vertical-align: middle; }
#banner { padding: .4rem .6rem; background: #fff3e0;
          border: 1px solid #e65100; display: none; margin: .6rem 0; }
"""

_HELPERS = """
function esc(s) {
  return String(s).replace(/[&<>"']/g, function (c) {
    return {'&':'&amp;','<':'&lt;','>':'&gt;','"':'&quot;',
            "'":'&#39;'}[c];
  });
}
function fetchJSON(url) {
  return fetch(url, {cache: 'no-store'}).then(function (r) {
    if (!r.ok) throw new Error(url + ' -> HTTP ' + r.status);
    return r.json();
  });
}
function banner(msg) {
  var b = document.getElementById('banner');
  if (!b) return;
  if (msg) { b.textContent = msg; b.style.display = 'block'; }
  else { b.style.display = 'none'; }
}
function spark(values, w, h) {
  w = w || 140; h = h || 28;
  if (!values || values.length < 2)
    return '<span class="muted">&mdash;</span>';
  var lo = Math.min.apply(null, values),
      hi = Math.max.apply(null, values);
  var span = (hi - lo) || 1;
  var pts = values.map(function (v, i) {
    var x = (i / (values.length - 1)) * (w - 2) + 1;
    var y = h - 2 - ((v - lo) / span) * (h - 4);
    return x.toFixed(1) + ',' + y.toFixed(1);
  }).join(' ');
  return '<svg class="spark" width="' + w + '" height="' + h + '">' +
         '<polyline points="' + pts + '" fill="none" ' +
         'stroke="#4c72b0" stroke-width="1.5"/></svg>';
}
function every(ms, fn) { fn(); setInterval(fn, ms); }
"""


def _page(title: str, body: str, script: str) -> str:
    """Shared page shell; ``title`` is escaped, ``body``/``script``
    are trusted fragments built by this module."""
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>{_STYLE}</style></head>
<body>
<nav><a href="/">runs</a><a href="/service">service</a>
<span class="muted">epg dash &middot; read-only &middot;
auto-refresh {_REFRESH_MS / 1000:g}s</span></nav>
<div id="banner"></div>
{body}
<script>{_HELPERS}
{script}</script>
</body></html>
"""


# ----------------------------------------------------------------------
def index_page() -> str:
    body = """
<h1>runs</h1>
<table id="runs"><thead><tr>
<th>run</th><th>kind</th><th>status</th><th>config digest</th>
<th>quarantined</th><th>trace</th></tr></thead>
<tbody></tbody></table>
<p class="muted">Watching for run directories; new runs appear on the
next refresh.</p>
"""
    script = """
every(%(ms)d, function () {
  fetchJSON('/api/runs').then(function (data) {
    banner(null);
    var rows = data.runs.map(function (r) {
      var cls = r.status === 'complete' ? 'ok' :
                r.status === 'serving' ? 'warn' : '';
      var q = r.quarantined.length
            ? '<span class="err">' + r.quarantined.length + '</span>'
            : '0';
      var link = r.has_trace
            ? '<a href="/run/' + encodeURIComponent(r.run_id) +
              '">timeline</a> <a href="/run/' +
              encodeURIComponent(r.run_id) + '/metrics">metrics</a>'
            : '<span class="muted">none</span>';
      return '<tr><td>' + esc(r.run_id) + '</td><td>' + esc(r.kind) +
             '</td><td class="' + cls + '">' + esc(r.status) +
             '</td><td><code>' + esc(r.config_digest || '?') +
             '</code></td><td>' + q + '</td><td>' + link +
             '</td></tr>';
    });
    document.querySelector('#runs tbody').innerHTML =
      rows.join('') || '<tr><td colspan="6" class="muted">' +
      'no runs found under the watch root (yet)</td></tr>';
  }).catch(function (e) { banner('index poll failed: ' + e); });
});
""" % {"ms": _REFRESH_MS}
    return _page("epg dash -- runs", body, script)


# ----------------------------------------------------------------------
def run_page(run_id: str) -> str:
    rid = json.dumps(run_id)
    body = f"""
<h1>run <code>{html.escape(run_id)}</code> &mdash; span timeline</h1>
<p id="summary" class="muted">loading&hellip;</p>
<h2>timeline</h2>
<img id="timeline" alt="span timeline" style="max-width:100%"
     src="/run/{html.escape(run_id, quote=True)}/timeline.svg">
<h2>slowest spans (simulated)</h2>
<table id="spans"><thead><tr>
<th>span</th><th>category</th><th>status</th>
<th>sim (s)</th><th>wall (s)</th></tr></thead><tbody></tbody></table>
"""
    script = """
var RID = %(rid)s;
every(%(ms)d, function () {
  fetchJSON('/api/run/' + encodeURIComponent(RID) + '/spans')
  .then(function (data) {
    banner(null);
    document.getElementById('summary').textContent =
      data.span_count + ' spans, sim end ' +
      data.sim_end.toFixed(6) + 's' +
      (data.in_flight ? ' -- in flight, tailing' : ' -- complete') +
      (data.truncated_tail ? ' (torn final line pending)' : '');
    var img = document.getElementById('timeline');
    img.src = '/run/' + encodeURIComponent(RID) +
              '/timeline.svg?v=' + data.offset;
    var rows = data.slowest.map(function (s) {
      var cls = s.status === 'ok' ? 'ok' : 'err';
      return '<tr><td>' + esc(s.name) + '</td><td>' + esc(s.cat) +
             '</td><td class="' + cls + '">' + esc(s.status) +
             '</td><td>' + s.sim_s.toFixed(6) + '</td><td>' +
             s.wall_s.toFixed(6) + '</td></tr>';
    });
    document.querySelector('#spans tbody').innerHTML =
      rows.join('') ||
      '<tr><td colspan="5" class="muted">no spans yet</td></tr>';
  }).catch(function (e) { banner('span poll failed: ' + e); });
});
""" % {"rid": rid, "ms": _REFRESH_MS}
    return _page(f"epg dash -- {run_id}", body, script)


# ----------------------------------------------------------------------
def metrics_page(run_id: str) -> str:
    rid = json.dumps(run_id)
    body = f"""
<h1>run <code>{html.escape(run_id)}</code> &mdash; metrics</h1>
<p class="muted">Aggregated from the run's event log; history is
sampled each time this page polls, so sparklines grow while the run
is in flight.</p>
<table id="metrics"><thead><tr>
<th>metric</th><th>kind</th><th>value</th><th>history</th>
</tr></thead><tbody></tbody></table>
"""
    script = """
var RID = %(rid)s;
every(%(ms)d, function () {
  fetchJSON('/api/run/' + encodeURIComponent(RID) + '/metrics')
  .then(function (data) {
    banner(null);
    var names = Object.keys(data.totals).sort();
    var rows = names.map(function (name) {
      var m = data.totals[name];
      var series = data.history.map(function (snap) {
        var v = snap.totals[name];
        return v ? v.value : 0;
      });
      return '<tr><td><code>' + esc(name) + '</code></td><td>' +
             esc(m.kind) + '</td><td>' +
             (+m.value.toFixed(6)) + '</td><td>' + spark(series) +
             '</td></tr>';
    });
    document.querySelector('#metrics tbody').innerHTML =
      rows.join('') ||
      '<tr><td colspan="4" class="muted">no metric events yet</td></tr>';
  }).catch(function (e) { banner('metrics poll failed: ' + e); });
});
""" % {"rid": rid, "ms": _REFRESH_MS}
    return _page(f"epg dash -- {run_id} metrics", body, script)


# ----------------------------------------------------------------------
def service_page() -> str:
    body = """
<h1>service</h1>
<p id="target" class="muted"></p>
<h2>daemon</h2>
<table id="daemon"><tbody></tbody></table>
<h2>served graphs</h2>
<table id="roster"><thead><tr>
<th>graph</th><th>spec</th><th>bytes</th><th>resident</th>
</tr></thead><tbody></tbody></table>
<h2>metrics</h2>
<table id="svcmetrics"><thead><tr>
<th>metric</th><th>value</th><th>history</th></tr></thead>
<tbody></tbody></table>
"""
    script = """
function kv(label, value, cls) {
  return '<tr><th>' + esc(label) + '</th><td class="' + (cls || '') +
         '">' + value + '</td></tr>';
}
every(%(ms)d, function () {
  fetchJSON('/api/service').then(function (data) {
    var t = document.getElementById('target');
    if (!data.configured) {
      t.textContent = 'no daemon configured -- relaunch with ' +
                      '--serve-url (and optionally a serve data dir)';
      banner(null);
      return;
    }
    t.textContent = data.url ? 'watching ' + data.url
      : 'roster from served.json only (no --serve-url)';
    banner(data.error);
    var drows = [];
    if (data.stats) {
      var s = data.stats;
      drows.push(kv('schema', 'v' + s.schema_version, 'ok'));
      drows.push(kv('ready', s.ready, s.ready ? 'ok' : 'err'));
      drows.push(kv('draining', s.draining,
                    s.draining ? 'warn' : 'ok'));
      drows.push(kv('recovered graphs', s.recovered_graphs));
      drows.push(kv('workers', s.workers.n + ' (' +
                    s.workers.quarantined + ' quarantined)',
                    s.workers.quarantined ? 'warn' : 'ok'));
      drows.push(kv('admission', esc(JSON.stringify(s.admission))));
      var open = Object.keys(s.breakers).filter(function (k) {
        return s.breakers[k].state !== 'closed';
      });
      drows.push(kv('breakers', open.length
        ? '<span class="warn">' + esc(open.join(', ')) + '</span>'
        : '<span class="ok">all closed</span>'));
      drows.push(kv('residency', esc(JSON.stringify(s.residency))));
    } else {
      drows.push(kv('state', '<span class="err">' +
                    esc(data.error || 'unreachable') + '</span>'));
    }
    document.querySelector('#daemon tbody').innerHTML =
      drows.join('');
    var live = {};
    data.graphs.forEach(function (g) { live[g.name] = g; });
    var roster = data.roster.length ? data.roster : data.graphs;
    document.querySelector('#roster tbody').innerHTML =
      roster.map(function (g) {
        var res = live[g.name]
          ? (live[g.name].resident ? 'yes' : 'no') : '?';
        return '<tr><td>' + esc(g.name) + '</td><td><code>' +
               esc(g.spec || '') + '</code></td><td>' +
               (g.bytes || 0) + '</td><td>' + esc(res) +
               '</td></tr>';
      }).join('') ||
      '<tr><td colspan="4" class="muted">no roster</td></tr>';
    var names = Object.keys(data.metrics).sort();
    document.querySelector('#svcmetrics tbody').innerHTML =
      names.map(function (name) {
        var series = data.history.map(function (snap) {
          return snap.metrics[name] || 0;
        });
        return '<tr><td><code>' + esc(name) + '</code></td><td>' +
               (+data.metrics[name].toFixed(6)) + '</td><td>' +
               spark(series) + '</td></tr>';
      }).join('') ||
      '<tr><td colspan="3" class="muted">no metrics</td></tr>';
  }).catch(function (e) { banner('service poll failed: ' + e); });
});
""" % {"ms": _REFRESH_MS}
    return _page("epg dash -- service", body, script)
