"""Incremental, offset-checkpointed tail of an ``events.jsonl`` log.

The dashboard watches runs that are *in flight*: the tracer on the
other side appends one JSON line per event and may be killed mid-write
at any instant, and ``epg resume`` later truncates the torn tail and
appends more.  :class:`EventFollower` turns that moving file into a
stable accumulated event list under three invariants:

* **Never block, never crash.**  A missing file, a torn final line,
  or a malformed line yields an empty/partial poll, not an exception.
* **Never double-count.**  The follower's offset only ever advances
  past *newline-terminated* lines, which is exactly the prefix
  :meth:`repro.observability.tracer.Tracer._recover` preserves when a
  resumed run truncates a torn tail -- so resume-append extends the
  follower's view without replaying anything.
* **Detect replacement.**  A fresh (non-resume) run unlinks and
  recreates the log.  A new inode or a file shorter than the offset
  is the obvious signature, but filesystems happily reuse inodes, so
  the follower also fingerprints the first line it consumed (the
  tracer's ``meta`` line embeds the run's wall-clock start, so two
  runs never open identically) and resets when they change --
  reporting the reset so callers can discard derived state (metric
  histories, span caches).

Strictly read-only: the follower opens the log ``rb`` and never
writes, so attaching a dashboard to a run cannot perturb its bytes.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["EventFollower"]


class EventFollower:
    """Tail one event log; accumulate parsed events across polls.

    Attributes (all maintained by :meth:`poll`):

    * ``events`` -- every complete event seen since the last reset, in
      file order;
    * ``offset`` -- byte position of the first unconsumed byte (always
      just past a newline);
    * ``resets`` -- times the file was replaced or truncated below the
      offset (each reset clears ``events``);
    * ``malformed`` -- complete lines that failed to parse (skipped);
    * ``pending_partial`` -- the last poll left a torn final line in
      the file (the in-flight-append signature).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.offset = 0
        self.events: list[dict] = []
        self.resets = 0
        self.malformed = 0
        self.pending_partial = False
        self._ino: int | None = None
        #: The first consumed line; a mismatch on re-read means the
        #: file was replaced even if the inode number was recycled.
        self._prefix = b""

    # ------------------------------------------------------------------
    @property
    def exists(self) -> bool:
        return self.path.is_file()

    def sim_end(self) -> float:
        """Simulated-time high-water mark of the accumulated events."""
        end = 0.0
        for ev in self.events:
            t = ev.get("t1_sim", ev.get("t_sim"))
            if isinstance(t, (int, float)):
                end = max(end, float(t))
        return end

    def span_count(self) -> int:
        return sum(1 for ev in self.events if ev.get("type") == "span")

    # ------------------------------------------------------------------
    def _reset(self) -> None:
        self.offset = 0
        self.events = []
        self._prefix = b""
        self.pending_partial = False
        self.resets += 1

    def poll(self) -> list[dict]:
        """Consume newly appended complete lines; return the new events.

        After a reset (file replaced or shrunk) the returned list is
        the whole replayed log and ``events`` has been rebuilt from
        scratch -- check ``resets`` if derived state must be discarded.
        """
        try:
            st = self.path.stat()
        except OSError:
            # Vanished mid-run (or not created yet).  Forget what we
            # had so a later recreation replays cleanly from zero.
            if self._ino is not None:
                self._reset()
                self._ino = None
            return []
        if self._ino is not None and st.st_ino != self._ino:
            self._reset()
        self._ino = st.st_ino
        if st.st_size < self.offset:
            # Shrunk below our checkpoint: not the resume-truncation
            # case (that only removes bytes we never consumed) but a
            # same-inode rewrite; replay from the top.
            self._reset()

        try:
            with self.path.open("rb") as fh:
                if self._prefix and \
                        fh.read(len(self._prefix)) != self._prefix:
                    self._reset()       # replaced on a recycled inode
                fh.seek(self.offset)
                chunk = fh.read()
        except OSError:
            return []
        if not chunk:
            return []

        # Consume only through the final newline; a torn in-progress
        # last line stays in the file for the next poll (by which time
        # the writer has finished it -- or a resume truncated it away,
        # which is equally fine because we never advanced past it).
        cut = chunk.rfind(b"\n")
        self.pending_partial = cut != len(chunk) - 1
        if cut < 0:
            return []
        complete = chunk[:cut + 1]
        if self.offset == 0:
            # Fingerprint the whole first line: the tracer's meta line
            # sorts its keys, so the run-distinguishing ``wall_unix``
            # is its *last* field -- a fixed-size prefix would miss it.
            self._prefix = complete[:complete.index(b"\n") + 1]
        self.offset += cut + 1

        fresh: list[dict] = []
        for raw in complete.split(b"\n"):
            line = raw.strip()
            if not line:
                continue
            try:
                ev = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                # A newline-terminated line that does not parse will
                # never become valid; count it and move on.
                self.malformed += 1
                continue
            if isinstance(ev, dict) and "type" in ev:
                fresh.append(ev)
            else:
                self.malformed += 1
        self.events.extend(fresh)
        return fresh
