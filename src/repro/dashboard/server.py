"""The ``epg dash`` HTTP server: live, read-only, stdlib-only.

One :class:`ThreadingHTTPServer` (the same machinery ``epg serve``
fronts queries with) serving four HTML pages and a JSON API over the
artifacts other processes are writing *right now*:

====================================  ================================
``/``                                 runs index (discovery re-scan)
``/run/<id>``                         span timeline page
``/run/<id>/metrics``                 per-run metric sparklines
``/run/<id>/timeline.svg``            live SVG render of the trace
``/service``                          daemon roster / admission state
``/api/runs``                         machine-readable index
``/api/run/<id>/spans``               tail-follow span summary
``/api/run/<id>/metrics``             metric totals + sampled history
``/api/service``                      daemon snapshot + history
``/healthz``                          liveness
====================================  ================================

Design rules, in order: **read-only** (every artifact is opened for
reading; attaching a dashboard must leave a run byte-identical),
**never crash while serving** (vanished runs, torn logs, dead daemons
degrade to error panels), and **no path from URLs to the filesystem**
(run ids resolve only through :func:`repro.dashboard.runs.discover_runs`).
"""

from __future__ import annotations

import json
import signal
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.dashboard import pages
from repro.dashboard.follower import EventFollower
from repro.dashboard.runs import RunInfo, discover_runs
from repro.dashboard.service_poll import ServicePoller
from repro.errors import DashboardError
from repro.logging_util import get_logger
from repro.observability.timeline import render_svg, span_tree

__all__ = ["DashConfig", "DashboardServer"]

#: Rows in the per-run "slowest spans" table.
_SLOWEST_N = 10


@dataclass
class DashConfig:
    """Everything ``epg dash`` needs."""

    root: Path | None = None
    serve_url: str | None = None
    host: str = "127.0.0.1"
    port: int = 8780
    #: Metric-history snapshots kept per run (and for the daemon).
    history: int = 512
    #: Default max span nesting depth for the live SVG (keeps renders
    #: of deep in-flight traces cheap); ``?depth=`` overrides per
    #: request, ``0`` disables the cap.
    max_depth: int = 6

    def __post_init__(self):
        if self.root is None and not self.serve_url:
            raise DashboardError(
                "nothing to watch: pass a run/serve directory, "
                "--serve-url, or both")
        if self.root is not None:
            self.root = Path(self.root)
            if not self.root.is_dir():
                raise DashboardError(
                    f"watch root {self.root} is not a directory")


class _RunState:
    """Follower plus the state derived from its events.

    Derived state is rebuilt whenever the follower resets (the run
    was re-created from scratch), so a dashboard left attached across
    ``rm -rf && epg reproduce`` never shows stale spans.
    """

    def __init__(self, trace_path: Path, history_limit: int):
        self.follower = EventFollower(trace_path)
        self.history_limit = history_limit
        self.totals: dict[str, dict] = {}
        self.history: list[dict] = []
        self._snap_offset = -1

    def poll(self) -> None:
        before = self.follower.resets
        fresh = self.follower.poll()
        if self.follower.resets != before:
            self.totals = {}
            self.history = []
            self._snap_offset = -1
        for ev in fresh:
            kind = ev.get("type")
            name = ev.get("name")
            if not isinstance(name, str):
                continue
            if kind == "counter":
                entry = self.totals.setdefault(
                    name, {"kind": "counter", "value": 0.0})
                entry["value"] += float(ev.get("inc", 1.0))
            elif kind == "observe":
                entry = self.totals.setdefault(
                    name, {"kind": "histogram", "value": 0.0,
                           "count": 0})
                entry["value"] += float(ev.get("value", 0.0))
                entry["count"] += 1
            elif kind == "gauge":
                self.totals[name] = {"kind": "gauge",
                                     "value": float(ev.get("value",
                                                           0.0))}

    def sample_history(self) -> None:
        """Append a metric snapshot if the log advanced since the
        last one -- clients polling every couple of seconds are what
        turns this into a periodic series."""
        if self.follower.offset == self._snap_offset:
            return
        self._snap_offset = self.follower.offset
        self.history.append({
            "wall": round(time.time(), 3),
            "sim": round(self.follower.sim_end(), 6),
            "totals": {k: dict(v) for k, v in self.totals.items()},
        })
        del self.history[:-self.history_limit]

    def slowest(self, n: int = _SLOWEST_N) -> list[dict]:
        spans = [ev for ev, _ in _walk(self.follower.events)]
        spans.sort(key=lambda ev: ev["t0_sim"] - ev["t1_sim"])
        out = []
        for ev in spans[:n]:
            attrs = ev.get("attrs") or {}
            out.append({
                "name": ev["name"], "cat": ev["cat"],
                "status": attrs.get("status", "ok"),
                "sim_s": round(ev["t1_sim"] - ev["t0_sim"], 6),
                "wall_s": round(ev["t1_wall"] - ev["t0_wall"], 6),
            })
        return out


def _walk(events: list[dict]):
    roots, children = span_tree(events)
    stack = [(ev, 0) for ev in reversed(roots)]
    while stack:
        ev, depth = stack.pop()
        yield ev, depth
        for child in reversed(children.get(ev["id"], ())):
            stack.append((child, depth + 1))


class DashboardServer:
    """Serve the dashboard until SIGTERM/SIGINT."""

    def __init__(self, config: DashConfig):
        self.config = config
        self.port = config.port
        self._log = get_logger("repro.dashboard")
        self._lock = threading.Lock()
        self._states: dict[str, _RunState] = {}
        self._poller = ServicePoller(
            config.serve_url, history=config.history
        ) if config.serve_url else None
        self._server: ThreadingHTTPServer | None = None

    # ------------------------------------------------------------------
    # State (all reads under the lock: ThreadingHTTPServer handles
    # each request on its own thread)
    # ------------------------------------------------------------------
    def _runs(self) -> dict[str, RunInfo]:
        if self.config.root is None:
            return {}
        return discover_runs(self.config.root)

    def _state_for(self, info: RunInfo) -> _RunState:
        state = self._states.get(info.run_id)
        if state is None or state.follower.path != info.trace_path:
            state = _RunState(info.trace_path, self.config.history)
            self._states[info.run_id] = state
        return state

    # ------------------------------------------------------------------
    # API payloads
    # ------------------------------------------------------------------
    def api_runs(self) -> dict:
        runs = self._runs()
        return {"root": str(self.config.root or ""),
                "runs": [info.to_dict()
                         for _, info in sorted(runs.items())]}

    def api_spans(self, info: RunInfo) -> dict:
        with self._lock:
            state = self._state_for(info)
            state.poll()
            f = state.follower
            return {
                "run_id": info.run_id,
                "in_flight": info.status not in ("complete",),
                "span_count": f.span_count(),
                "event_count": len(f.events),
                "sim_end": f.sim_end(),
                "offset": f.offset,
                "resets": f.resets,
                "malformed": f.malformed,
                "truncated_tail": f.pending_partial,
                "slowest": state.slowest(),
            }

    def api_metrics(self, info: RunInfo) -> dict:
        with self._lock:
            state = self._state_for(info)
            state.poll()
            state.sample_history()
            return {
                "run_id": info.run_id,
                "totals": {k: dict(v)
                           for k, v in sorted(state.totals.items())},
                "history": list(state.history),
            }

    def api_service(self) -> dict:
        # The roster lives in served.json next to the daemon's data;
        # if the watch root holds a service run dir, read it there.
        service_dirs = [info.directory
                        for info in self._runs().values()
                        if info.kind == "service"]
        if self._poller is None:
            # Roster-only view: a serve data dir with no live daemon
            # (or one the operator chose not to point us at).
            roster = ServicePoller(
                "http://unused", data_dir=service_dirs[0]
            ).roster() if service_dirs else []
            return {"configured": bool(service_dirs), "url": None,
                    "reachable": False, "compatible": False,
                    "error": "no --serve-url configured"
                             if service_dirs else None,
                    "stats": None, "graphs": [], "metrics": {},
                    "roster": roster, "history": []}
        with self._lock:
            self._poller.data_dir = service_dirs[0] \
                if service_dirs else None
            snap = self._poller.snapshot()
            snap["configured"] = True
            snap["history"] = list(self._poller.history)
        return snap

    def timeline_svg(self, info: RunInfo, depth: int | None) -> str:
        with self._lock:
            state = self._state_for(info)
            state.poll()
            events = list(state.follower.events)
        if depth is None:
            depth = self.config.max_depth or None
        return render_svg(events, max_depth=depth)

    # ------------------------------------------------------------------
    # Lifecycle (mirrors QueryDaemon.serve_forever)
    # ------------------------------------------------------------------
    def serve_forever(self, *, install_signal_handlers: bool = True,
                      ready_event: threading.Event | None = None
                      ) -> int:
        try:
            self._server = ThreadingHTTPServer(
                (self.config.host, self.config.port), _Handler)
        except OSError as exc:
            raise DashboardError(
                f"cannot bind {self.config.host}:{self.config.port}: "
                f"{exc}") from exc
        self._server.dash = self            # type: ignore[attr-defined]
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._log.info("dashboard on http://%s:%d/ (watching %s%s)",
                       self.config.host, self.port,
                       self.config.root or "-",
                       f", daemon {self.config.serve_url}"
                       if self.config.serve_url else "")
        if install_signal_handlers:
            def _stop(signum, frame):
                self._log.info("signal %d: shutting down", signum)
                threading.Thread(target=self.shutdown,
                                 daemon=True).start()
            signal.signal(signal.SIGTERM, _stop)
            signal.signal(signal.SIGINT, _stop)
        if ready_event is not None:
            ready_event.set()
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._server.server_close()
        return 0

    def shutdown(self) -> None:
        if self._server is not None:
            self._server.shutdown()


class _Handler(BaseHTTPRequestHandler):
    server_version = "epg-dash"

    @property
    def dash(self) -> DashboardServer:
        return self.server.dash         # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # route through our logger
        self.dash._log.debug("http: " + fmt, *args)

    # ------------------------------------------------------------------
    def _send(self, status: int, body: bytes, ctype: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass                        # client went away mid-refresh

    def _json(self, payload: dict, status: int = 200) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"),
                   "application/json")

    def _html(self, markup: str, status: int = 200) -> None:
        self._send(status, markup.encode("utf-8"),
                   "text/html; charset=utf-8")

    def _not_found(self, api: bool) -> None:
        if api:
            self._json({"error": "not found"}, 404)
        else:
            self._html("<h1>404</h1><p><a href='/'>runs</a></p>", 404)

    # ------------------------------------------------------------------
    def do_GET(self):                           # noqa: N802 (stdlib API)
        parsed = urllib.parse.urlsplit(self.path)
        parts = [urllib.parse.unquote(p)
                 for p in parsed.path.split("/") if p]
        query = urllib.parse.parse_qs(parsed.query)
        try:
            self._route(parts, query)
        except Exception as exc:    # last resort: a panel, not a crash
            self.dash._log.warning("request %s failed: %s",
                                   self.path, exc)
            try:
                self._json({"error": f"{type(exc).__name__}: {exc}"},
                           500)
            except Exception:
                pass

    def _lookup(self, run_id: str) -> RunInfo | None:
        """Resolve a URL run id through discovery only -- never by
        joining it onto a path -- so traversal inputs just miss."""
        return self.dash._runs().get(run_id)

    def _route(self, parts: list[str], query: dict) -> None:
        dash = self.dash
        if not parts:
            return self._html(pages.index_page())
        if parts == ["healthz"]:
            return self._json({"ok": True})
        if parts == ["service"]:
            return self._html(pages.service_page())
        if parts[0] == "api":
            return self._route_api(parts[1:])
        if parts[0] == "run" and len(parts) in (2, 3):
            info = self._lookup(parts[1])
            if info is None:
                return self._not_found(api=False)
            if len(parts) == 2:
                return self._html(pages.run_page(info.run_id))
            if parts[2] == "metrics":
                return self._html(pages.metrics_page(info.run_id))
            if parts[2] == "timeline.svg":
                depth = None
                if "depth" in query:
                    try:
                        depth = int(query["depth"][0]) or None
                    except ValueError:
                        depth = None
                svg = dash.timeline_svg(info, depth)
                return self._send(200, svg.encode("utf-8"),
                                  "image/svg+xml")
        return self._not_found(api=False)

    def _route_api(self, parts: list[str]) -> None:
        dash = self.dash
        if parts == ["runs"]:
            return self._json(dash.api_runs())
        if parts == ["service"]:
            return self._json(dash.api_service())
        if len(parts) == 3 and parts[0] == "run":
            info = self._lookup(parts[1])
            if info is None:
                return self._not_found(api=True)
            if parts[2] == "spans":
                return self._json(dash.api_spans(info))
            if parts[2] == "metrics":
                return self._json(dash.api_metrics(info))
        return self._not_found(api=True)
