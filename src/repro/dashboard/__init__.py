"""``epg dash``: a live, read-only operational dashboard.

The batch pipeline writes artifacts (``events.jsonl``, checkpoints,
reports) and the serving layer exposes endpoints (``/stats``,
``/metrics``); this subpackage is the console that watches both
without touching either:

* :mod:`~repro.dashboard.follower` -- offset-checkpointed tail of an
  ``events.jsonl`` being appended to by a live run (torn tails,
  resume-append, and file replacement all handled);
* :mod:`~repro.dashboard.runs` -- marker-file run discovery, the only
  URL-to-filesystem mapping the server has;
* :mod:`~repro.dashboard.service_poll` -- versioned ``/stats`` +
  Prometheus ``/metrics`` polling of a live ``epg serve`` daemon;
* :mod:`~repro.dashboard.pages` / :mod:`~repro.dashboard.server` --
  the inline-HTML pages and the ``ThreadingHTTPServer`` JSON API
  behind them.
"""

from repro.dashboard.follower import EventFollower
from repro.dashboard.runs import RunInfo, discover_runs, is_run_dir
from repro.dashboard.server import DashConfig, DashboardServer
from repro.dashboard.service_poll import (ServicePoller,
                                          parse_prometheus_text)

__all__ = [
    "DashConfig", "DashboardServer", "EventFollower", "RunInfo",
    "ServicePoller", "discover_runs", "is_run_dir",
    "parse_prometheus_text",
]
