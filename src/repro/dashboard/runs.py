"""Run discovery: turn a directory tree into a dashboard roster.

A *run directory* is whatever ``epg reproduce`` / ``epg resume`` /
``epg serve --data-dir`` left behind -- recognised purely by marker
artifacts (``suite.json``, ``checkpoint.json``, ``REPORT.md``,
``results.csv``, ``trace/events.jsonl``, ``served.json``), never by
naming convention.  The watch root may *be* a run directory, or a
parent holding many; discovery handles both and re-scans on every
request, so runs appearing mid-flight show up on the next refresh.

Discovery is the dashboard's only mapping from URL run ids to
filesystem paths: a request can only reach directories this module
enumerated, so no amount of crafted ``/api/run/<id>`` input can walk
outside the watch root.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.resilience.checkpoint import CHECKPOINT_NAME, SuiteCheckpoint
from repro.service.manifest import MANIFEST_NAME

__all__ = ["RunInfo", "discover_runs", "is_run_dir"]

#: Any one of these marks a directory as a run.
_MARKERS = ("suite.json", CHECKPOINT_NAME, "REPORT.md", "results.csv",
            MANIFEST_NAME)
_TRACE_REL = Path("trace") / "events.jsonl"


@dataclass
class RunInfo:
    """One discovered run directory, summarised for the index page."""

    run_id: str
    directory: Path
    kind: str = "experiment"          # suite | experiment | service
    status: str = "in-flight"         # in-flight | complete
    config_digest: str | None = None
    quarantined: list = field(default_factory=list)
    has_trace: bool = False

    @property
    def trace_path(self) -> Path:
        return self.directory / _TRACE_REL

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "status": self.status,
            "config_digest": self.config_digest,
            "quarantined": list(self.quarantined),
            "has_trace": self.has_trace,
        }


def is_run_dir(directory: str | Path) -> bool:
    directory = Path(directory)
    if not directory.is_dir():
        return False
    if (directory / _TRACE_REL).is_file():
        return True
    return any((directory / m).is_file() for m in _MARKERS)


def _first_digest(directory: Path) -> str | None:
    """Config digest from the nearest checkpoint manifest, if any."""
    for path in sorted(directory.rglob(CHECKPOINT_NAME)):
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            continue
        digest = raw.get("config_digest")
        if isinstance(digest, str):
            return digest
    return None


def _classify(directory: Path) -> RunInfo:
    info = RunInfo(run_id=directory.name, directory=directory)
    if (directory / MANIFEST_NAME).is_file():
        info.kind = "service"
    elif (directory / "suite.json").is_file():
        info.kind = "suite"
    info.has_trace = (directory / _TRACE_REL).is_file()
    # A report (or, for single experiments, a results table) only
    # lands once the run finished; until then the run is in flight.
    if (directory / "REPORT.md").is_file() or \
            (directory / "results.csv").is_file():
        info.status = "complete"
    elif info.kind == "service":
        info.status = "serving"
    info.config_digest = _first_digest(directory)
    try:
        info.quarantined = SuiteCheckpoint.scan_quarantined(directory)
    except Exception:           # torn checkpoint mid-write: show run anyway
        info.quarantined = []
    return info


def discover_runs(root: str | Path) -> dict[str, RunInfo]:
    """``{run_id: RunInfo}`` for the watch root, freshly scanned.

    If ``root`` is itself a run directory it is the sole entry (id =
    its basename); otherwise each immediate child that looks like a
    run is listed.  Ids are basenames -- unique within one parent by
    construction -- and sorted for a stable index page.
    """
    root = Path(root)
    if is_run_dir(root):
        info = _classify(root)
        return {info.run_id: info}
    out: dict[str, RunInfo] = {}
    if not root.is_dir():
        return out
    for child in sorted(root.iterdir()):
        if child.is_dir() and is_run_dir(child):
            out[child.name] = _classify(child)
    return out
