"""Crash-safe filesystem helpers.

Every JSON artifact the harness writes (``config.json``,
``provenance.json``, ``checkpoint.json``, dataset manifests) goes
through :func:`atomic_write_text`: the content lands in a temp file in
the destination directory, is fsynced, and is moved into place with
``os.replace``.  A run killed at any instant therefore leaves either
the old artifact or the new one on disk -- never a truncated hybrid --
which is what makes checkpoint-resume trustworthy.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text", "atomic_write_json"]


def atomic_write_text(path: str | Path, text: str,
                      encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` atomically (temp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent,
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: str | Path, obj, *, indent: int = 2,
                      sort_keys: bool = False) -> Path:
    """Serialize ``obj`` as JSON and write it atomically."""
    return atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n")
