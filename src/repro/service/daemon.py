"""``epg serve``: the fault-tolerant query daemon.

A stdlib-only HTTP/JSON front end over the reproduction's kernels:

* ``GET  /healthz``  -- liveness (200 while the process runs);
* ``GET  /readyz``   -- readiness (503 until started, and while
  draining);
* ``GET  /graphs``   -- the served roster;
* ``GET  /stats``    -- admission/breaker/residency counters;
* ``GET  /metrics``  -- Prometheus text exposition;
* ``POST /query``    -- ``{"graph", "system", "algorithm", "root"?,
  "n_threads"?}`` -> a result summary.

Failure discipline: a query is *shed* (503 + ``Retry-After``) the
moment the daemon knows it cannot serve it well -- queue full, circuit
open, draining, past deadline -- and *rate-limited* (429) per client.
Nothing a client sends can produce a 500: handler errors degrade to
well-formed error responses.  SIGTERM starts a graceful drain: stop
admitting, finish in-flight queries, persist ``served.json``, exit 0.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.errors import ReproError, ServiceError
from repro.logging_util import get_logger
from repro.observability import Tracer
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.service.admission import AdmissionController, RateLimiter
from repro.service.batching import BatchingExecutor, Job
from repro.service.breaker import CircuitBreaker
from repro.service.graphs import ResidentGraphManager
from repro.service.telemetry import ServiceTelemetry
from repro.service.workers import WorkerPool
from repro.systems.base import ALGORITHMS

__all__ = ["QueryDaemon", "ServeConfig", "STATS_SCHEMA_VERSION"]

#: Version stamped into every ``/stats`` payload; bump on any change
#: to the payload's shape.  External consumers (the ``epg dash``
#: service page, scrapers) key on it to reject daemons they do not
#: understand instead of rendering garbage.
STATS_SCHEMA_VERSION = 1

#: The fixed GET surface; anything else is labelled ``other`` in
#: metrics so arbitrary 404 paths cannot inflate label cardinality.
_GET_ENDPOINTS = frozenset(
    {"/healthz", "/readyz", "/graphs", "/stats", "/metrics"})


@dataclass
class ServeConfig:
    """Everything ``epg serve`` needs."""

    data_dir: Path
    graphs: tuple[str, ...] = ()
    host: str = "127.0.0.1"
    port: int = 8750
    workers: int = 2
    #: Shards per kernel execution (``--shards``): forwarded to every
    #: resident system so queries split across cores; outputs stay
    #: bit-identical to serial (see :mod:`repro.shard`).
    shards: int = 1
    max_queue: int = 16
    max_inflight: int = 4
    request_timeout_s: float = 10.0
    #: Wedge deadline before the watchdog quarantines a worker.
    wedge_timeout_s: float | None = None
    breaker_failures: int = 3
    batch_window_s: float = 0.01
    max_batch: int = 32
    max_resident_bytes: int | None = None
    max_rps_per_client: float | None = None
    fault_spec: str | None = None
    seed: int = 20170402
    cache_dir: Path | None = None
    trace_dir: Path | None = None
    drain_grace_s: float = 15.0
    breaker_policy: RetryPolicy = field(default_factory=RetryPolicy)

    def resolved_wedge_timeout_s(self) -> float:
        if self.wedge_timeout_s is not None:
            return self.wedge_timeout_s
        return max(self.request_timeout_s / 2, 0.5)


class QueryDaemon:
    """Owns every serving subsystem; drives the HTTP server."""

    def __init__(self, config: ServeConfig):
        self.config = config
        tracer = (Tracer(config.trace_dir)
                  if config.trace_dir is not None else Tracer())
        self.telemetry = ServiceTelemetry(tracer)
        cache = None
        if config.cache_dir is not None:
            from repro.cache import ArtifactCache

            cache = ArtifactCache(config.cache_dir)
        self.manager = ResidentGraphManager(
            config.data_dir,
            max_resident_bytes=config.max_resident_bytes,
            cache=cache, seed=config.seed, telemetry=self.telemetry,
            shards=config.shards)
        self.admission = AdmissionController(
            config.max_queue, config.max_inflight,
            telemetry=self.telemetry)
        self.limiter = RateLimiter(config.max_rps_per_client)
        self.injector = (FaultInjector(config.seed, config.fault_spec)
                         if config.fault_spec else None)
        self.pool = WorkerPool(
            config.workers,
            wedge_timeout_s=config.resolved_wedge_timeout_s(),
            telemetry=self.telemetry)
        self.batcher = BatchingExecutor(
            self.pool, self.manager, self.telemetry,
            window_s=config.batch_window_s,
            max_batch=config.max_batch)
        self.breakers: dict[tuple, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._fault_seq: dict[tuple, int] = {}
        self._seq_lock = threading.Lock()
        self.ready = False
        self.draining = False
        self.recovered = 0
        self._drained = False
        self._drain_lock = threading.Lock()
        self._shutdown = threading.Event()
        self._server: ThreadingHTTPServer | None = None
        self._log = get_logger("repro.service")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover the roster, materialize requested graphs, start the
        pool -- then flip ready."""
        self.recovered = self.manager.recover()
        for spec in self.config.graphs:
            self.manager.add_graph(spec)
        if not self.manager.datasets:
            raise ServiceError(
                "nothing to serve: pass --graphs (e.g. kron:10) or "
                "start in a data dir with a served.json manifest")
        self.pool.start()
        self.batcher.start()
        self.ready = True
        self._log.info("serving %d graph(s): %s",
                       len(self.manager.datasets),
                       ", ".join(sorted(self.manager.datasets)))

    def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish what's admitted,
        persist the manifest.  One-shot: ``draining`` may already be
        set by the caller to slam the admission door early."""
        with self._drain_lock:
            if self._drained:
                return
            self._drained = True
        self.draining = True
        self._log.info("draining: waiting for in-flight queries")
        self.batcher.stop()
        deadline = time.monotonic() + self.config.drain_grace_s
        while not self.admission.idle() \
                and time.monotonic() < deadline:
            time.sleep(0.05)
        self.pool.stop()
        self.manager.manifest.save()
        self.telemetry.close()
        self._log.info("drain complete")

    def request_shutdown(self) -> None:
        self._shutdown.set()

    # ------------------------------------------------------------------
    # The query path
    # ------------------------------------------------------------------
    def _breaker(self, graph: str, system: str) -> CircuitBreaker:
        key = (graph, system)
        with self._breaker_lock:
            breaker = self.breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    key, self.config.breaker_failures,
                    self.config.breaker_policy, seed=self.config.seed,
                    telemetry=self.telemetry)
                self.breakers[key] = breaker
            return breaker

    def _next_fault(self, system: str, algorithm: str,
                    n_threads: int):
        """Per-cell request sequence drives the injector's ``attempt``
        axis, so ``crash:5`` means "the first five queries of this
        cell", deterministically."""
        if self.injector is None:
            return None
        key = (system, algorithm, n_threads)
        with self._seq_lock:
            seq = self._fault_seq.get(key, 0)
            self._fault_seq[key] = seq + 1
        return self.injector.fault_for(system, algorithm, n_threads,
                                       seq)

    @staticmethod
    def _shed(reason: str, retry_after_s: float,
              detail: str) -> tuple[int, dict, dict]:
        status = 429 if reason == "rate_limited" else 503
        return (status,
                {"error": reason, "detail": detail},
                {"Retry-After": f"{max(retry_after_s, 0.1):.1f}"})

    def handle_query(self, payload, client: str
                     ) -> tuple[int, dict, dict]:
        """Run one query to a terminal response.

        Returns ``(status, body, extra_headers)``; never raises.
        """
        t0 = time.monotonic()
        status, body, headers = self._handle_query(payload, client)
        duration = time.monotonic() - t0
        self.telemetry.counter("epg_serve_requests_total",
                               endpoint="query", status=str(status))
        self.telemetry.observe("epg_serve_request_seconds", duration,
                               status=str(status))
        if status in (429, 503):
            self.telemetry.counter("epg_serve_shed_total",
                                   reason=body.get("error", "other"))
        fields = payload if isinstance(payload, dict) else {}
        self.telemetry.request_span(
            "query", duration_s=duration, status=status,
            graph=str(fields.get("graph", "")),
            system=str(fields.get("system", "")),
            algorithm=str(fields.get("algorithm", "")),
            client=str(client))
        return status, body, headers

    def _handle_query(self, payload, client: str
                      ) -> tuple[int, dict, dict]:
        if self.draining or not self.ready:
            return self._shed("draining", self.config.drain_grace_s,
                              "daemon is not accepting queries")
        if not isinstance(payload, dict):
            return 400, {"error": "bad_request",
                         "detail": "JSON object required"}, {}
        graph = payload.get("graph")
        system = payload.get("system")
        algorithm = payload.get("algorithm")
        if not all(isinstance(v, str) and v
                   for v in (graph, system, algorithm)):
            return 400, {"error": "bad_request",
                         "detail": "graph, system, and algorithm are "
                                   "required strings"}, {}
        dataset = self.manager.datasets.get(graph)
        if dataset is None:
            return 404, {"error": "unknown_graph",
                         "detail": f"graph {graph!r} is not served",
                         "served": sorted(self.manager.datasets)}, {}
        if algorithm not in ALGORITHMS:
            return 400, {"error": "bad_request",
                         "detail": f"unknown algorithm {algorithm!r}"}, {}
        try:
            n_threads = int(payload.get("n_threads", 32))
            root = payload.get("root")
            if algorithm in ("bfs", "sssp"):
                root = int(root if root is not None else 0)
                if not 0 <= root < dataset.n_vertices:
                    return 400, {
                        "error": "bad_request",
                        "detail": f"root must be in [0, "
                                  f"{dataset.n_vertices})"}, {}
            else:
                root = None
            if n_threads < 1:
                raise ValueError
        except (TypeError, ValueError):
            return 400, {"error": "bad_request",
                         "detail": "root and n_threads must be "
                                   "integers"}, {}

        if not self.limiter.allow(client):
            return self._shed("rate_limited",
                              self.limiter.retry_after_s(),
                              f"client {client!r} over its rate")
        breaker = self._breaker(graph, system)
        admitted, retry_after = breaker.allow()
        if not admitted:
            return self._shed("circuit_open", retry_after,
                              f"{system} is failing on {graph}; "
                              "circuit open")
        ticket = self.admission.try_admit()
        if ticket is None:
            return self._shed("queue_full", 1.0,
                              "admission queue is full")

        fault = self._next_fault(system, algorithm, n_threads)
        job = Job(graph=graph, system=system, algorithm=algorithm,
                  n_threads=n_threads, root=root, fault=fault,
                  ticket=ticket,
                  solo=getattr(fault, "kind", None) == "hang")
        try:
            if not self.batcher.submit(job):
                return self._shed("draining", self.config.drain_grace_s,
                                  "daemon is draining")
            outcome = job.promise.wait(self.config.request_timeout_s)
            if outcome is None:
                job.promise.fail("timeout", "request deadline "
                                            "exceeded")
                outcome = job.promise.wait(0)
            kind, value = outcome
            if kind == "ok":
                breaker.on_success()
                return 200, {"status": "ok", "result": value,
                             "batched": True}, {}
            reason, detail = value
            breaker.on_failure()
            return self._shed(reason, 1.0, detail)
        finally:
            ticket.release()

    # ------------------------------------------------------------------
    # Read-only endpoints
    # ------------------------------------------------------------------
    def handle_get(self, path: str) -> tuple[int, str, str]:
        """(status, content_type, body) for the GET surface."""
        if path == "/healthz":
            return 200, "text/plain", "ok\n"
        if path == "/readyz":
            if self.ready and not self.draining:
                return 200, "text/plain", "ready\n"
            return 503, "text/plain", ("draining\n" if self.draining
                                       else "starting\n")
        if path == "/metrics":
            return 200, "text/plain; version=0.0.4", \
                self.telemetry.prometheus()
        if path == "/graphs":
            body = json.dumps({
                "graphs": [
                    {"name": name, "n_vertices": d.n_vertices,
                     "n_edges": d.n_edges, "directed": d.directed,
                     "weighted": d.weighted}
                    for name, d in sorted(
                        self.manager.datasets.items())],
            }, indent=2)
            return 200, "application/json", body
        if path == "/stats":
            body = json.dumps(self.stats(), indent=2)
            return 200, "application/json", body
        return 404, "application/json", json.dumps(
            {"error": "not_found", "detail": path})

    def stats(self) -> dict:
        with self._breaker_lock:
            breakers = {"/".join(k): b.snapshot()
                        for k, b in sorted(self.breakers.items())}
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "ready": self.ready, "draining": self.draining,
            "recovered_graphs": self.recovered,
            "admission": self.admission.stats(),
            "workers": {"n": self.pool.n_workers,
                        "quarantined": self.pool.quarantined},
            "breakers": breakers,
            "residency": self.manager.stats(),
        }

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    def serve_forever(self, *, install_signal_handlers: bool = True,
                      ready_event: threading.Event | None = None
                      ) -> int:
        """Start, serve until SIGTERM/SIGINT, drain, return 0."""
        self.start()
        try:
            self._server = ThreadingHTTPServer(
                (self.config.host, self.config.port),
                _make_handler(self))
        except OSError as exc:
            raise ServiceError(
                f"cannot bind {self.config.host}:{self.config.port}: "
                f"{exc}") from exc
        self._server.daemon_threads = True
        if install_signal_handlers:
            def _on_signal(signum, frame):
                self.request_shutdown()

            for sig in (signal.SIGTERM, signal.SIGINT):
                signal.signal(sig, _on_signal)
        server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="epg-serve-http", daemon=True)
        server_thread.start()
        self._log.info("listening on %s:%d", self.config.host,
                       self.config.port)
        if ready_event is not None:
            ready_event.set()
        try:
            while not self._shutdown.wait(0.2):
                pass
        finally:
            self.draining = True  # refuse new queries immediately
            self.drain()
            self._server.shutdown()
            server_thread.join(timeout=5.0)
            self._server.server_close()
        return 0


def _make_handler(daemon: QueryDaemon):
    log = get_logger("repro.service.http")

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "epg-serve"

        def log_message(self, fmt, *args):  # quiet by default
            log.debug("%s " + fmt, self.address_string(), *args)

        # ----------------------------------------------------------
        def _respond(self, status: int, content_type: str, body: str,
                     headers: dict | None = None) -> None:
            data = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for k, v in (headers or {}).items():
                self.send_header(k, v)
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self):
            try:
                path = self.path.split("?", 1)[0]
                status, ctype, body = daemon.handle_get(path)
                # Unknown paths share one label value: clients must
                # not be able to grow the metrics registry unboundedly.
                endpoint = path if path in _GET_ENDPOINTS else "other"
                daemon.telemetry.counter(
                    "epg_serve_requests_total",
                    endpoint=endpoint,
                    status=str(status))
                self._respond(status, ctype, body)
            except BrokenPipeError:
                pass
            except Exception:
                log.exception("GET %s failed", self.path)
                self._respond(503, "application/json", json.dumps(
                    {"error": "internal", "detail": "handler error"}))

        def do_POST(self):
            try:
                if self.path.split("?", 1)[0] != "/query":
                    self._respond(404, "application/json", json.dumps(
                        {"error": "not_found", "detail": self.path}))
                    return
                try:
                    length = int(self.headers.get("Content-Length", 0))
                    payload = json.loads(
                        self.rfile.read(length).decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    self._respond(400, "application/json", json.dumps(
                        {"error": "bad_request",
                         "detail": "body must be JSON"}))
                    return
                client = (self.headers.get("X-Client")
                          or self.client_address[0])
                status, body, headers = daemon.handle_query(
                    payload, client)
                self._respond(status, "application/json",
                              json.dumps(body), headers)
            except BrokenPipeError:
                pass
            except Exception:
                # The no-500 guarantee: anything unexpected degrades
                # to a well-formed 503.
                log.exception("POST %s failed", self.path)
                try:
                    self._respond(503, "application/json", json.dumps(
                        {"error": "internal",
                         "detail": "handler error"}),
                        {"Retry-After": "1.0"})
                except Exception:
                    pass

    return Handler
