"""Thread-safe telemetry facade over the single-threaded tracer.

The :class:`~repro.observability.tracer.Tracer` assumes one thread
(its span stack and sim clock are unguarded); the daemon has many.
:class:`ServiceTelemetry` serializes *every* tracer touch behind one
lock and only uses the stack-free entry points (``span_complete`` and
the metric mirrors), so the event log keeps its monotonic simulated
timeline and the live registry its consistency.
"""

from __future__ import annotations

import threading

from repro.observability import Tracer

__all__ = ["ServiceTelemetry"]


class ServiceTelemetry:
    """Locked counters/gauges/histograms + completed request spans."""

    def __init__(self, tracer: Tracer | None = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    # ------------------------------------------------------------------
    # A disabled tracer drops metric calls (its null-tracer contract);
    # the daemon's /metrics must work untraced, so fall back to the
    # registry directly -- tracing then only adds the event log.
    def counter(self, name: str, inc: float = 1.0, **labels) -> None:
        with self._lock:
            if self.tracer.enabled:
                self.tracer.counter(name, inc, **labels)
            else:
                self.tracer.metrics.counter(name).inc(inc, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        from repro.observability.metrics import buckets_for

        with self._lock:
            if self.tracer.enabled:
                self.tracer.observe(name, value, **labels)
            else:
                self.tracer.metrics.histogram(
                    name, buckets=buckets_for(name)).observe(
                    value, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        with self._lock:
            if self.tracer.enabled:
                self.tracer.gauge(name, value, **labels)
            else:
                self.tracer.metrics.gauge(name).set(value, **labels)

    def request_span(self, name: str, *, duration_s: float,
                     **attrs) -> None:
        with self._lock:
            self.tracer.span_complete(name, "request",
                                      duration_s=duration_s, **attrs)

    # ------------------------------------------------------------------
    def prometheus(self) -> str:
        with self._lock:
            return self.tracer.metrics.to_prometheus()

    def metrics_dict(self) -> dict:
        with self._lock:
            return self.tracer.metrics.to_dict()

    def counter_total(self, name: str) -> float:
        with self._lock:
            metric = self.tracer.metrics.get(name)
            return metric.total() if metric is not None else 0.0

    def close(self) -> None:
        with self._lock:
            self.tracer.close()
