"""Per-(graph, system) circuit breakers.

A system that keeps failing on one graph should stop being *tried* on
that graph for a while -- the serving analogue of the batch side's
quarantine, except reversible: after a cooldown the breaker lets one
probe through (half-open), and a probe success closes the circuit
again.  Cooldowns reuse the retry policy's capped exponential schedule
with the same seeded jitter the batch harness applies to its backoffs,
so repeated openings back off deterministically.
"""

from __future__ import annotations

import threading
import time

from repro.machine.variance import VarianceModel
from repro.resilience.retry import RetryPolicy

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """closed -> open (K consecutive failures) -> half-open -> closed."""

    def __init__(self, key: tuple, failure_threshold: int = 3,
                 policy: RetryPolicy | None = None, seed: int = 0,
                 telemetry=None, clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.key = tuple(key)
        self.failure_threshold = int(failure_threshold)
        self.policy = policy or RetryPolicy()
        self.variance = VarianceModel(seed)
        self.telemetry = telemetry
        self._clock = clock
        self._lock = threading.Lock()
        self.state = "closed"
        self._consecutive_failures = 0
        #: How many times the circuit has opened (cooldown tier).
        self._open_count = 0
        self._open_until = 0.0
        self._probe_inflight = False

    # ------------------------------------------------------------------
    def _cooldown_s(self) -> float:
        nominal = self.policy.nominal_backoff_s(
            min(self._open_count, 10))
        return self.variance.jitter(
            nominal, ("breaker", *self.key, self._open_count))

    def _set_state(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        if self.telemetry is not None:
            label = "/".join(map(str, self.key))
            self.telemetry.gauge("epg_serve_circuit_open",
                                 1.0 if state == "open" else 0.0,
                                 target=label)
            self.telemetry.counter(
                "epg_serve_circuit_transitions_total", target=label,
                state=state)

    # ------------------------------------------------------------------
    def allow(self) -> tuple[bool, float]:
        """(admit?, retry_after_s).  In half-open, exactly one caller
        gets through as the probe."""
        with self._lock:
            if self.state == "closed":
                return True, 0.0
            now = self._clock()
            if self.state == "open":
                if now < self._open_until:
                    return False, max(self._open_until - now, 0.0)
                self._set_state("half_open")
                self._probe_inflight = False
            # half-open: admit a single probe at a time.
            if self._probe_inflight:
                return False, self.policy.base_backoff_s
            self._probe_inflight = True
            return True, 0.0

    def on_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            if self.state != "closed":
                self._set_state("closed")
                self._open_count = 0

    def on_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            failed_probe = self.state == "half_open"
            self._probe_inflight = False
            if failed_probe \
                    or self._consecutive_failures >= self.failure_threshold:
                self._open_count += 1
                self._open_until = self._clock() + self._cooldown_s()
                self._set_state("open")
                self._consecutive_failures = 0

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            return {"state": self.state,
                    "consecutive_failures": self._consecutive_failures,
                    "times_opened": self._open_count}
