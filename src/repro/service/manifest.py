"""The daemon's durable roster: ``served.json``.

The manifest is the serving analogue of ``checkpoint.json``: a small
atomic JSON file recording which graphs the daemon serves and where
their homogenized bytes live, so a SIGKILL'd daemon restarts into the
same roster instead of an empty one.  Entries carry the on-disk byte
total at publish time; recovery treats a size mismatch as corruption
and rebuilds the graph rather than serving damaged inputs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ServiceError
from repro.ioutil import atomic_write_json

__all__ = ["MANIFEST_NAME", "ServedGraph", "ServedManifest"]

MANIFEST_NAME = "served.json"

#: Bump on manifest schema changes; a mismatched version is treated
#: like a missing manifest (cold start), never an error.
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class ServedGraph:
    """One graph the daemon has published."""

    name: str
    spec: str
    #: Homogenized dataset directory, relative to the data dir.
    directory: str
    #: Total bytes under ``directory`` when the entry was published.
    bytes: int

    def to_dict(self) -> dict:
        return {"name": self.name, "spec": self.spec,
                "directory": self.directory, "bytes": self.bytes}

    @staticmethod
    def from_dict(d: dict) -> "ServedGraph":
        return ServedGraph(name=d["name"], spec=d["spec"],
                           directory=d["directory"],
                           bytes=int(d["bytes"]))


class ServedManifest:
    """Atomic load/save of the served-graph roster."""

    def __init__(self, data_dir: str | Path):
        self.data_dir = Path(data_dir)
        self.graphs: dict[str, ServedGraph] = {}

    @property
    def path(self) -> Path:
        return self.data_dir / MANIFEST_NAME

    # ------------------------------------------------------------------
    def record(self, entry: ServedGraph) -> None:
        self.graphs[entry.name] = entry
        self.save()

    def forget(self, name: str) -> None:
        if self.graphs.pop(name, None) is not None:
            self.save()

    def save(self) -> None:
        self.data_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_json(self.path, {
            "version": MANIFEST_VERSION,
            "graphs": [self.graphs[k].to_dict()
                       for k in sorted(self.graphs)],
        })

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, data_dir: str | Path) -> "ServedManifest":
        """Load the roster; a missing, torn, or foreign-version file
        yields an empty manifest (cold start), never an exception --
        except for a present-but-unreadable *directory*, which is a
        real configuration problem."""
        m = cls(data_dir)
        path = m.path
        if not path.exists():
            return m
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            return m  # torn write: the previous save is gone, start cold
        if not isinstance(raw, dict) \
                or raw.get("version") != MANIFEST_VERSION:
            return m
        try:
            for d in raw.get("graphs", ()):
                entry = ServedGraph.from_dict(d)
                m.graphs[entry.name] = entry
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"{path}: malformed served-graph entry: {exc}") from exc
        return m
