"""The serving layer: ``epg serve`` and its load generator.

The paper's pipeline is batch-shaped -- run every cell, write a
report.  This subpackage turns the same kernels into a long-lived
query daemon with the failure discipline the batch side already has
(retry budgets, quarantine, atomic manifests), adapted to a service:

* :mod:`~repro.service.graphs` -- resident-graph manager: materialize
  served graphs, keep loaded structures under a byte budget, recover
  the roster from ``served.json`` after a crash;
* :mod:`~repro.service.admission` -- bounded admission + per-client
  token buckets (load shedding, 429/503);
* :mod:`~repro.service.breaker` -- per-(graph, system) circuit
  breakers with jittered cooldowns;
* :mod:`~repro.service.workers` / :mod:`~repro.service.batching` --
  a watchdogged worker pool executing same-graph query batches as one
  kernel sweep (the Graph500 batched-roots idiom);
* :mod:`~repro.service.daemon` -- the HTTP/JSON front end, lifecycle
  (healthz / readyz / graceful SIGTERM drain);
* :mod:`~repro.service.loadgen` -- ``epg loadgen``: closed/open-loop
  traffic with latency, shed, and error accounting.
"""

from repro.service.admission import AdmissionController, RateLimiter
from repro.service.batching import BatchingExecutor, Job
from repro.service.breaker import CircuitBreaker
from repro.service.daemon import (QueryDaemon, ServeConfig,
                                  STATS_SCHEMA_VERSION)
from repro.service.graphs import GraphSpec, ResidentGraphManager
from repro.service.loadgen import LoadGenerator, LoadReport
from repro.service.manifest import MANIFEST_NAME, ServedManifest
from repro.service.workers import WorkerPool

__all__ = [
    "AdmissionController", "BatchingExecutor", "CircuitBreaker",
    "GraphSpec", "Job", "LoadGenerator", "LoadReport", "MANIFEST_NAME",
    "QueryDaemon", "RateLimiter", "ResidentGraphManager", "ServeConfig",
    "ServedManifest", "STATS_SCHEMA_VERSION", "WorkerPool",
]
