"""Resident graphs: materialization, residency budget, recovery.

The daemon serves queries out of RAM: each (graph, system, threads)
triple holds one :class:`~repro.systems.base.LoadedGraph` built by the
same ``GraphSystem.load`` path the batch suite uses (artifact-cache
memmap bundles included, so a warm cache makes residency nearly
zero-copy).  The :class:`ResidentGraphManager` owns three concerns:

* **Materialization** -- a :class:`GraphSpec` (``kron:10``,
  ``cit-patents``) is turned into a homogenized dataset directory via
  the battle-tested :class:`~repro.core.experiment.Experiment`
  setup/homogenize phases, then published in ``served.json``.
* **Residency** -- loaded structures are LRU-bounded by
  ``max_resident_bytes``; in-use entries are never evicted.
* **Recovery** -- on restart the roster is rebuilt from the manifest;
  a dataset whose on-disk bytes no longer match the published size is
  treated as corrupt, deleted, and rematerialized.
"""

from __future__ import annotations

import shutil
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import ExperimentConfig
from repro.datasets.homogenize import HomogenizedDataset, load_manifest
from repro.errors import DatasetError, ServiceError
from repro.logging_util import get_logger
from repro.service.manifest import ServedGraph, ServedManifest
from repro.systems.base import GraphSystem, LoadedGraph
from repro.systems.registry import available_systems, create_system

__all__ = ["GraphSpec", "ResidentGraphManager"]


@dataclass(frozen=True)
class GraphSpec:
    """A parsed ``--graphs`` entry."""

    name: str
    dataset: str
    scale: int | None = None
    factor: float | None = None

    @staticmethod
    def parse(text: str) -> "GraphSpec":
        """``kron:<scale>`` | ``cit-patents[:factor]`` |
        ``dota-league[:factor]``."""
        head, _, arg = str(text).strip().partition(":")
        if head == "kron":
            try:
                scale = int(arg)
            except ValueError:
                raise ServiceError(
                    f"bad graph spec {text!r}: kron needs an integer "
                    "scale, e.g. kron:10") from None
            if not 1 <= scale <= 30:
                raise ServiceError(
                    f"bad graph spec {text!r}: scale must be in [1, 30]")
            return GraphSpec(name=f"kron{scale}", dataset="kronecker",
                             scale=scale)
        if head in ("cit-patents", "dota-league"):
            factor = None
            if arg:
                try:
                    factor = float(arg)
                except ValueError:
                    raise ServiceError(
                        f"bad graph spec {text!r}: factor must be a "
                        "number") from None
                if not 0 < factor <= 1:
                    raise ServiceError(
                        f"bad graph spec {text!r}: factor must be in "
                        "(0, 1]")
            return GraphSpec(name=head, dataset=head, factor=factor)
        raise ServiceError(
            f"bad graph spec {text!r} (want kron:<scale>, "
            "cit-patents[:factor], or dota-league[:factor])")

    def to_config(self, directory: Path, seed: int,
                  cache_dir: Path | None) -> ExperimentConfig:
        return ExperimentConfig(
            output_dir=directory, dataset=self.dataset,
            scale=self.scale if self.scale is not None else 14,
            realworld_factor=self.factor, seed=seed,
            cache_dir=cache_dir)


def _tree_bytes(root: Path) -> int:
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


def _dataset_dir(directory: Path) -> Path | None:
    """The homogenized dataset directory under one graph directory
    (``datasets/<dataset-name>/``), or None when not materialized."""
    base = directory / "datasets"
    if not base.is_dir():
        return None
    candidates = sorted(p.parent for p in base.glob("*/manifest.json"))
    return candidates[0] if candidates else None


def _estimate_resident_bytes(loaded: LoadedGraph) -> int:
    """Approximate RAM held by a loaded structure: every distinct
    numpy array reachable from ``loaded.data`` (shallow object walk)."""
    total = 0
    seen: set[int] = set()

    def walk(obj, depth: int) -> None:
        nonlocal total
        if depth > 4 or id(obj) in seen:
            return
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            total += obj.nbytes
        elif isinstance(obj, dict):
            for v in obj.values():
                walk(v, depth + 1)
        elif isinstance(obj, (list, tuple, set, frozenset)):
            for v in obj:
                walk(v, depth + 1)
        elif hasattr(obj, "__dict__"):
            for v in vars(obj).values():
                walk(v, depth + 1)

    walk(loaded.data, 0)
    return max(total, 1)


@dataclass
class _Resident:
    """One loaded (graph, system, threads) entry."""

    system: GraphSystem
    loaded: LoadedGraph
    nbytes: int
    refs: int = 0
    #: Monotonically increasing use stamp (manager-assigned LRU order).
    stamp: int = 0


class ResidentGraphManager:
    """Owns the served roster and the loaded-structure LRU."""

    def __init__(self, data_dir: str | Path, *,
                 max_resident_bytes: int | None = None,
                 cache=None, seed: int = 20170402, telemetry=None,
                 shards: int = 1):
        self.data_dir = Path(data_dir)
        self.max_resident_bytes = max_resident_bytes
        self.cache = cache
        self.seed = int(seed)
        self.telemetry = telemetry
        #: Shards per kernel execution, forwarded to every resident
        #: system (bit-identical outputs at any count).
        self.shards = int(shards)
        self.manifest = ServedManifest.load(self.data_dir)
        #: name -> HomogenizedDataset of every published graph.
        self.datasets: dict[str, HomogenizedDataset] = {}
        self._residents: dict[tuple, _Resident] = {}
        self._lock = threading.Lock()
        self._stamp = 0
        self._log = get_logger("repro.service")

    # ------------------------------------------------------------------
    # Roster
    # ------------------------------------------------------------------
    def _graph_dir(self, name: str) -> Path:
        return self.data_dir / "graphs" / name

    def _materialize(self, spec: GraphSpec) -> HomogenizedDataset:
        from repro.core.experiment import Experiment

        directory = self._graph_dir(spec.name)
        cfg = spec.to_config(directory, self.seed,
                             self.cache.root if self.cache else None)
        exp = Experiment(cfg)
        exp.setup()
        return exp.homogenize()

    def add_graph(self, spec_text: str) -> HomogenizedDataset:
        """Materialize (or reopen) one graph and publish it."""
        spec = GraphSpec.parse(spec_text)
        directory = self._graph_dir(spec.name)
        dataset = None
        dataset_dir = _dataset_dir(directory)
        if dataset_dir is not None:
            try:
                dataset = load_manifest(dataset_dir)
            except (DatasetError, ValueError, KeyError, OSError):
                self._log.warning("%s: unreadable dataset dir; "
                                  "rebuilding", spec.name)
                shutil.rmtree(directory, ignore_errors=True)
        if dataset is None:
            dataset = self._materialize(spec)
        self.datasets[spec.name] = dataset
        self.manifest.record(ServedGraph(
            name=spec.name, spec=spec_text,
            directory=str(directory.relative_to(self.data_dir)),
            bytes=_tree_bytes(directory)))
        return dataset

    def recover(self) -> int:
        """Rebuild the roster from ``served.json``; returns the number
        of graphs that had to be *re-materialized* (missing or corrupt
        on disk).  Intact graphs are reopened in place."""
        rebuilt = 0
        for name in sorted(self.manifest.graphs):
            entry = self.manifest.graphs[name]
            directory = self.data_dir / entry.directory
            dataset_dir = _dataset_dir(directory)
            intact = dataset_dir is not None \
                and _tree_bytes(directory) == entry.bytes
            if intact:
                try:
                    self.datasets[name] = load_manifest(dataset_dir)
                    continue
                except (DatasetError, ValueError, KeyError, OSError):
                    intact = False
            self._log.warning(
                "recovery: %s %s; rematerializing from %r", name,
                "missing" if not directory.exists() else "corrupt",
                entry.spec)
            shutil.rmtree(directory, ignore_errors=True)
            self.add_graph(entry.spec)
            rebuilt += 1
        if self.cache is not None:
            # Damaged cache bundles would resurface on every load;
            # verify evicts them now, while we are not serving.
            problems = self.cache.verify()
            for p in problems:
                self._log.warning("recovery: %s", p)
        if self.telemetry is not None and rebuilt:
            self.telemetry.counter("epg_serve_recoveries_total",
                                   rebuilt)
        return rebuilt

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------
    def _evict_to_fit(self, incoming: int) -> None:
        """Drop least-recently-used idle entries until ``incoming``
        fits (caller holds the lock)."""
        if self.max_resident_bytes is None:
            return
        def resident() -> int:
            return sum(r.nbytes for r in self._residents.values())
        while self._residents \
                and resident() + incoming > self.max_resident_bytes:
            idle = [(r.stamp, k) for k, r in self._residents.items()
                    if r.refs == 0]
            if not idle:
                return  # everything pinned; admit over budget
            _, victim = min(idle)
            dropped = self._residents.pop(victim)
            self._log.info("evicting resident %s (%d bytes)",
                           "/".join(map(str, victim)), dropped.nbytes)

    def lease(self, graph: str, system: str, n_threads: int):
        """Context manager yielding ``(GraphSystem, LoadedGraph)`` with
        the entry pinned against eviction for the duration."""
        return _Lease(self, graph, system, int(n_threads))

    def _acquire(self, graph: str, system: str,
                 n_threads: int) -> _Resident:
        dataset = self.datasets.get(graph)
        if dataset is None:
            raise ServiceError(f"graph {graph!r} is not served")
        if system not in available_systems():
            raise ServiceError(f"unknown system {system!r}")
        key = (graph, system, n_threads)
        with self._lock:
            entry = self._residents.get(key)
            if entry is not None:
                entry.refs += 1
                self._stamp += 1
                entry.stamp = self._stamp
                return entry
        # Load outside the lock: materializing a structure can take a
        # while and must not block queries on already-resident graphs.
        sys_inst = create_system(system, n_threads=n_threads,
                                 shards=self.shards)
        loaded = sys_inst.load(dataset, cache=self.cache)
        nbytes = _estimate_resident_bytes(loaded)
        with self._lock:
            entry = self._residents.get(key)
            if entry is None:
                self._evict_to_fit(nbytes)
                entry = _Resident(system=sys_inst, loaded=loaded,
                                  nbytes=nbytes)
                self._residents[key] = entry
            entry.refs += 1
            self._stamp += 1
            entry.stamp = self._stamp
            self._publish_gauges()
            return entry

    def _release(self, graph: str, system: str, n_threads: int) -> None:
        with self._lock:
            entry = self._residents.get((graph, system, n_threads))
            if entry is not None and entry.refs > 0:
                entry.refs -= 1

    def _publish_gauges(self) -> None:
        if self.telemetry is None:
            return
        self.telemetry.gauge("epg_serve_graphs_resident",
                             len({k[0] for k in self._residents}))
        self.telemetry.gauge(
            "epg_serve_resident_bytes",
            sum(r.nbytes for r in self._residents.values()))

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "graphs": sorted(self.datasets),
                "resident_entries": [
                    {"graph": k[0], "system": k[1], "n_threads": k[2],
                     "bytes": r.nbytes, "in_use": r.refs}
                    for k, r in sorted(self._residents.items())],
                "resident_bytes": sum(r.nbytes for r
                                      in self._residents.values()),
                "max_resident_bytes": self.max_resident_bytes,
            }


class _Lease:
    __slots__ = ("_mgr", "_key", "_entry")

    def __init__(self, mgr: ResidentGraphManager, graph: str,
                 system: str, n_threads: int):
        self._mgr = mgr
        self._key = (graph, system, n_threads)
        self._entry: _Resident | None = None

    def __enter__(self):
        self._entry = self._mgr._acquire(*self._key)
        return self._entry.system, self._entry.loaded

    def __exit__(self, *exc) -> bool:
        self._mgr._release(*self._key)
        return False
