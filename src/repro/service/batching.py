"""Same-graph query coalescing: many queries, one kernel sweep.

The Graph500 never times one BFS: it sweeps a batch of roots over one
loaded graph.  The daemon borrows the idiom for throughput: queries
that agree on (graph, system, algorithm, n_threads) and arrive within
a short linger window are executed as a single
:meth:`~repro.systems.base.GraphSystem.run_many` sweep on one worker,
with duplicate roots sharing a single execution.

Chaos discipline: injected faults are attached per *query*, and a
fault may never poison co-batched innocents.  Crash faults fail their
query before the sweep; hang faults are marked solo at submission (a
unique batch key) so only the wedged worker is lost; corrupt faults
damage a per-query copy of the result, which the cheap validators then
reject.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.logging_util import get_logger
from repro.service.workers import Promise

__all__ = ["BatchingExecutor", "Job", "summarize", "validate_output"]

#: Longest an injected hang can wedge a worker before giving up on its
#: own (the watchdog normally quarantines it much earlier).
HANG_CAP_S = 60.0

_ROOTED = ("bfs", "sssp")


@dataclass
class Job:
    """One admitted query, on its way to a kernel sweep."""

    graph: str
    system: str
    algorithm: str
    n_threads: int
    root: int | None = None
    fault: object | None = None
    ticket: object | None = None
    promise: Promise = field(default_factory=Promise)
    solo: bool = False

    def key(self) -> tuple:
        return (self.graph, self.system, self.algorithm, self.n_threads)


def validate_output(algorithm: str, output: dict,
                    root: int | None) -> str | None:
    """Cheap result sanity check; returns a reason string on failure.

    These are the O(1)/O(n) invariants a corrupted result cannot fake:
    the serving layer's version of Graph500's "a fast system cannot win
    by returning garbage"."""
    try:
        if algorithm == "bfs":
            parent = output["parent"]
            if int(parent[int(root)]) != int(root):
                return "bfs parent[root] != root"
        elif algorithm == "sssp":
            dist = output["dist"]
            if not np.isfinite(dist[int(root)]) \
                    or float(dist[int(root)]) != 0.0:
                return "sssp dist[root] != 0"
        else:
            for name, arr in output.items():
                if np.issubdtype(arr.dtype, np.floating) \
                        and not np.isfinite(arr).all():
                    return f"non-finite values in {name!r}"
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        return f"malformed output ({type(exc).__name__})"
    return None


def _corrupt_output(algorithm: str, output: dict,
                    root: int | None) -> dict:
    """A damaged *copy* of one query's result (never the shared one)."""
    damaged = {k: np.array(v, copy=True) for k, v in output.items()}
    if algorithm == "bfs" and "parent" in damaged:
        damaged["parent"][int(root)] = -7
    elif algorithm == "sssp" and "dist" in damaged:
        damaged["dist"][int(root)] = np.inf
    else:
        name = next(iter(damaged))
        arr = damaged[name]
        if np.issubdtype(arr.dtype, np.floating):
            arr[0] = np.nan
        else:
            damaged["__corrupt__"] = np.zeros(0)
    return damaged


def summarize(result, n_vertices: int) -> dict:
    """The small JSON a query response carries instead of the arrays."""
    out: dict = {"system": result.system, "algorithm": result.algorithm,
                 "kernel_s": result.time_s,
                 "n_vertices": int(n_vertices)}
    if result.root is not None:
        out["root"] = int(result.root)
    if result.iterations is not None:
        out["iterations"] = int(result.iterations)
    output = result.output
    if result.algorithm == "bfs" and "parent" in output:
        out["reached"] = int((output["parent"] >= 0).sum())
    elif result.algorithm == "sssp" and "dist" in output:
        out["reached"] = int(np.isfinite(output["dist"]).sum())
    elif "labels" in output:
        labels = output["labels"]
        out["components"] = int(np.unique(labels).size)
    for name, value in sorted(result.counters.items()):
        out.setdefault(name, float(value))
    return out


class _Batch:
    """One flushed group; runs on a single worker slot."""

    def __init__(self, executor: "BatchingExecutor", jobs: list[Job]):
        self.executor = executor
        self.jobs = jobs

    # -- WorkerPool task protocol --------------------------------------
    def run(self, ctx) -> None:
        self.executor._execute(self.jobs, ctx)

    def abandon(self, reason: str) -> None:
        for job in self.jobs:
            job.promise.fail("timeout", reason)


class BatchingExecutor:
    """Groups submitted jobs by key; flushes by linger window or size."""

    def __init__(self, pool, manager, telemetry=None, *,
                 window_s: float = 0.01, max_batch: int = 32,
                 clock=time.monotonic):
        self.pool = pool
        self.manager = manager
        self.telemetry = telemetry
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._clock = clock
        self._pending: dict[tuple, list[Job]] = {}
        self._deadlines: dict[tuple, float] = {}
        self._cond = threading.Condition()
        self._accepting = True
        self._flusher: threading.Thread | None = None
        self._solo_ids = itertools.count()
        self._log = get_logger("repro.service")

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._flusher = threading.Thread(
            target=self._flush_loop, name="epg-serve-batcher",
            daemon=True)
        self._flusher.start()

    def submit(self, job: Job) -> bool:
        """Queue one job; False when the executor is draining."""
        key = job.key()
        if job.solo:
            key = key + ("solo", next(self._solo_ids))
        with self._cond:
            if not self._accepting:
                return False
            group = self._pending.setdefault(key, [])
            group.append(job)
            if key not in self._deadlines:
                self._deadlines[key] = self._clock() + self.window_s
            if len(group) >= self.max_batch or job.solo:
                self._flush_locked(key)
            self._cond.notify()
        return True

    # ------------------------------------------------------------------
    def _flush_locked(self, key: tuple) -> None:
        jobs = self._pending.pop(key, [])
        self._deadlines.pop(key, None)
        if jobs:
            self.pool.submit(_Batch(self, jobs))

    def _flush_loop(self) -> None:
        while True:
            with self._cond:
                if not self._accepting and not self._pending:
                    return
                now = self._clock()
                due = [k for k, d in self._deadlines.items() if d <= now]
                for key in due:
                    self._flush_locked(key)
                timeout = self.window_s
                if self._deadlines:
                    timeout = max(
                        min(self._deadlines.values()) - now, 0.001)
                self._cond.wait(timeout)

    def stop(self) -> None:
        """Stop accepting; flush everything already queued."""
        with self._cond:
            self._accepting = False
            for key in list(self._pending):
                self._flush_locked(key)
            self._cond.notify_all()
        if self._flusher is not None:
            self._flusher.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Batch execution (runs on a worker thread)
    # ------------------------------------------------------------------
    def _execute(self, jobs: list[Job], ctx) -> None:
        live = [j for j in jobs if not j.promise.done]
        for job in live:
            if job.ticket is not None:
                job.ticket.start()
        if not live:
            return
        if self.telemetry is not None:
            self.telemetry.observe("epg_serve_batch_size", len(live),
                                   algorithm=live[0].algorithm)
        runnable: list[Job] = []
        for job in live:
            kind = getattr(job.fault, "kind", None)
            if kind == "crash":
                self._count_fault("crash")
                job.promise.fail("fault", "injected crash")
            elif kind == "hang":
                self._count_fault("hang")
                self._wedge(ctx)
                job.promise.fail("fault", "injected hang")
            else:
                runnable.append(job)
        if not runnable or ctx.abandoned.is_set():
            return
        first = runnable[0]
        rooted = first.algorithm in _ROOTED
        try:
            with self.manager.lease(first.graph, first.system,
                                    first.n_threads) as (system, loaded):
                roots = (tuple(int(j.root) for j in runnable)
                         if rooted else ())
                results = system.run_many(loaded, first.algorithm,
                                          roots)
                if not rooted:
                    # run_many executes a rootless kernel once and
                    # returns a single entry; alias it to every
                    # co-batched job so none is left hanging.
                    results = list(results) * len(runnable)
                for job, result in zip(runnable, results):
                    self._finish(job, result, loaded.n_vertices)
        except ReproError as exc:
            for job in runnable:
                job.promise.fail(
                    "error", f"{type(exc).__name__}: {exc}")

    def _finish(self, job: Job, result, n_vertices: int) -> None:
        output = result.output
        if getattr(job.fault, "kind", None) == "corrupt":
            self._count_fault("corrupt")
            output = _corrupt_output(job.algorithm, output, job.root)
        reason = validate_output(job.algorithm, output, job.root)
        if reason is not None:
            job.promise.fail("invalid", f"result failed validation: "
                                        f"{reason}")
            return
        job.promise.fulfill(summarize(result, n_vertices))

    def _wedge(self, ctx) -> None:
        """Simulate a wedged worker until the watchdog abandons us."""
        deadline = self._clock() + HANG_CAP_S
        while not ctx.abandoned.is_set() and self._clock() < deadline:
            time.sleep(0.02)

    def _count_fault(self, kind: str) -> None:
        if self.telemetry is not None:
            self.telemetry.counter("epg_serve_faults_total", kind=kind)
