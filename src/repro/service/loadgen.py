"""``epg loadgen``: drive the daemon, account for every response.

A seeded closed- or open-loop client fleet.  Closed loop: each client
fires its next query the moment the previous one resolves (throughput
follows capacity).  Open loop: arrivals are paced at a target rate
regardless of completions (the overload shape that exercises
shedding).  The report is the serving acceptance artifact: per-status
counts, latency percentiles, and the clean/dirty verdict -- *dirty*
means a response outside the well-formed set (any 5xx that is not a
503, or a transport error), which is exactly what the chaos soak must
never see.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

from repro.errors import ServiceError
from repro.ioutil import atomic_write_json
from repro.logging_util import get_logger

__all__ = ["LoadGenerator", "LoadReport"]

#: Statuses a healthy chaotic run is allowed to produce.
WELL_FORMED = frozenset({200, 400, 404, 429, 503})


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[idx]


@dataclass
class LoadReport:
    """Everything one loadgen run observed."""

    duration_s: float = 0.0
    requests: int = 0
    status_counts: dict = field(default_factory=dict)
    transport_errors: int = 0
    latencies_s: list = field(default_factory=list)
    shed_reasons: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def record(self, status: int, latency_s: float,
               reason: str | None) -> None:
        self.requests += 1
        key = str(status)
        self.status_counts[key] = self.status_counts.get(key, 0) + 1
        self.latencies_s.append(latency_s)
        if reason:
            self.shed_reasons[reason] = \
                self.shed_reasons.get(reason, 0) + 1

    def count(self, status: int) -> int:
        return self.status_counts.get(str(status), 0)

    @property
    def dirty_responses(self) -> int:
        """Responses outside the well-formed set, plus transport
        errors -- the number the chaos soak requires to be zero."""
        bad = sum(n for s, n in self.status_counts.items()
                  if int(s) not in WELL_FORMED)
        return bad + self.transport_errors

    def to_dict(self) -> dict:
        lat = sorted(self.latencies_s)
        return {
            "duration_s": round(self.duration_s, 3),
            "requests": self.requests,
            "status_counts": dict(sorted(self.status_counts.items())),
            "transport_errors": self.transport_errors,
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "achieved_rps": round(
                self.requests / self.duration_s, 2
            ) if self.duration_s > 0 else 0.0,
            "latency_s": {
                "p50": round(_percentile(lat, 0.50), 6),
                "p95": round(_percentile(lat, 0.95), 6),
                "p99": round(_percentile(lat, 0.99), 6),
                "max": round(lat[-1], 6) if lat else 0.0,
            },
            "dirty_responses": self.dirty_responses,
        }

    def summary(self, dash_url: str | None = None) -> str:
        """Human-readable report; ``dash_url`` (an ``epg dash`` base
        URL) appends a hint line pointing at the live service page."""
        d = self.to_dict()
        lines = [f"requests {d['requests']} in {d['duration_s']}s "
                 f"({d['achieved_rps']} rps)"]
        for status, n in d["status_counts"].items():
            lines.append(f"  {status}: {n}")
        if self.transport_errors:
            lines.append(f"  transport errors: "
                         f"{self.transport_errors}")
        if d["shed_reasons"]:
            reasons = ", ".join(f"{k}={v}" for k, v
                                in d["shed_reasons"].items())
            lines.append(f"  shed: {reasons}")
        p = d["latency_s"]
        lines.append(f"  latency p50={p['p50']}s p95={p['p95']}s "
                     f"p99={p['p99']}s")
        lines.append(f"  dirty responses: {d['dirty_responses']}")
        if dash_url:
            lines.append(f"  watch live: {dash_url.rstrip('/')}/service")
        return "\n".join(lines)


class LoadGenerator:
    """A seeded client fleet against one daemon."""

    def __init__(self, url: str, *, duration_s: float = 10.0,
                 clients: int = 4, mode: str = "closed",
                 rps: float | None = None, seed: int = 20170402,
                 systems: tuple[str, ...] = ("gap", "graph500"),
                 algorithms: tuple[str, ...] = ("bfs",),
                 n_threads: int = 32,
                 request_timeout_s: float = 30.0):
        if mode not in ("closed", "open"):
            raise ServiceError(f"mode must be closed|open, not {mode!r}")
        if mode == "open" and (rps is None or rps <= 0):
            raise ServiceError("open-loop mode needs --rps > 0")
        self.url = url.rstrip("/")
        self.duration_s = float(duration_s)
        self.clients = int(clients)
        self.mode = mode
        self.rps = rps
        self.seed = int(seed)
        self.systems = tuple(systems)
        self.algorithms = tuple(algorithms)
        self.n_threads = int(n_threads)
        self.request_timeout_s = float(request_timeout_s)
        self._log = get_logger("repro.service.loadgen")

    # ------------------------------------------------------------------
    def _get_json(self, path: str) -> dict:
        try:
            with urllib.request.urlopen(
                    self.url + path,
                    timeout=self.request_timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise ServiceError(
                f"cannot reach daemon at {self.url}: {exc}") from exc

    def discover_graphs(self) -> list[dict]:
        graphs = self._get_json("/graphs").get("graphs", [])
        if not graphs:
            raise ServiceError(f"daemon at {self.url} serves no graphs")
        return graphs

    def _query_once(self, payload: dict, client_id: str
                    ) -> tuple[int, str | None]:
        """(status, shed_reason) for one POST /query."""
        req = urllib.request.Request(
            self.url + "/query",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json",
                     "X-Client": client_id},
            method="POST")
        try:
            with urllib.request.urlopen(
                    req, timeout=self.request_timeout_s) as resp:
                resp.read()
                return resp.status, None
        except urllib.error.HTTPError as exc:
            try:
                reason = json.loads(exc.read().decode("utf-8")
                                    ).get("error")
            except Exception:
                reason = None
            return exc.code, reason

    # ------------------------------------------------------------------
    def run(self) -> LoadReport:
        graphs = self.discover_graphs()
        report = LoadReport()
        lock = threading.Lock()
        t_start = time.monotonic()
        deadline = t_start + self.duration_s

        def client_loop(idx: int) -> None:
            rng = Random((self.seed << 8) ^ idx)
            client_id = f"loadgen-{idx}"
            # Open loop: this client owns every k-th arrival slot.
            period = (self.clients / self.rps
                      if self.mode == "open" else 0.0)
            next_fire = t_start + (idx / self.rps
                                   if self.mode == "open" else 0.0)
            while True:
                now = time.monotonic()
                if now >= deadline:
                    return
                if self.mode == "open":
                    if now < next_fire:
                        time.sleep(min(next_fire - now,
                                       deadline - now))
                        continue
                    next_fire += period
                graph = rng.choice(graphs)
                algorithm = rng.choice(self.algorithms)
                payload = {
                    "graph": graph["name"],
                    "system": rng.choice(self.systems),
                    "algorithm": algorithm,
                    "n_threads": self.n_threads,
                }
                if algorithm in ("bfs", "sssp"):
                    payload["root"] = rng.randrange(
                        max(graph["n_vertices"], 1))
                t0 = time.monotonic()
                try:
                    status, reason = self._query_once(payload,
                                                      client_id)
                    with lock:
                        report.record(status, time.monotonic() - t0,
                                      reason)
                except (urllib.error.URLError, OSError):
                    with lock:
                        report.requests += 1
                        report.transport_errors += 1

        threads = [threading.Thread(target=client_loop, args=(i,),
                                    name=f"loadgen-{i}", daemon=True)
                   for i in range(self.clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report.duration_s = time.monotonic() - t_start
        return report

    # ------------------------------------------------------------------
    @staticmethod
    def write_report(report: LoadReport, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, report.to_dict())
        return path
