"""Admission control: bounded queue, in-flight budget, rate limits.

Load shedding is the serving analogue of quarantine: refuse cheaply
and early instead of degrading every admitted query.  Admission is a
single gate at the front door -- a query is either *admitted* (it gets
a ticket and will eventually run or time out) or *shed* with a 503 and
a ``Retry-After``.  A per-client token bucket additionally converts
one chatty client into that client's 429s instead of everyone's
latency.
"""

from __future__ import annotations

import threading
import time

__all__ = ["AdmissionController", "AdmissionTicket", "RateLimiter"]


class AdmissionTicket:
    """Proof of admission; release exactly once."""

    __slots__ = ("_ctrl", "_state")

    def __init__(self, ctrl: "AdmissionController"):
        self._ctrl = ctrl
        self._state = "queued"

    def start(self) -> None:
        """The query left the queue and is executing."""
        self._ctrl._transition(self, "queued", "inflight")

    def release(self) -> None:
        """The query reached a terminal state (idempotent)."""
        self._ctrl._finish(self)


class AdmissionController:
    """Caps queued + executing queries; sheds the excess."""

    def __init__(self, max_queue: int, max_inflight: int,
                 telemetry=None):
        if max_queue < 0 or max_inflight < 1:
            raise ValueError("max_queue >= 0 and max_inflight >= 1")
        self.max_queue = int(max_queue)
        self.max_inflight = int(max_inflight)
        self.telemetry = telemetry
        self.queued = 0
        self.inflight = 0
        self.shed = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self.max_queue + self.max_inflight

    def try_admit(self) -> AdmissionTicket | None:
        """A ticket, or None when the query must be shed."""
        with self._lock:
            if self.queued + self.inflight >= self.capacity:
                self.shed += 1
                return None
            self.queued += 1
            self._publish()
            return AdmissionTicket(self)

    def _transition(self, ticket: AdmissionTicket, src: str,
                    dst: str) -> None:
        with self._lock:
            if ticket._state != src:
                return
            ticket._state = dst
            self.queued -= 1
            self.inflight += 1
            self._publish()

    def _finish(self, ticket: AdmissionTicket) -> None:
        with self._lock:
            if ticket._state == "queued":
                self.queued -= 1
            elif ticket._state == "inflight":
                self.inflight -= 1
            else:
                return
            ticket._state = "done"
            self._publish()

    def _publish(self) -> None:
        if self.telemetry is not None:
            self.telemetry.gauge("epg_serve_queue_depth", self.queued)
            self.telemetry.gauge("epg_serve_inflight", self.inflight)

    def idle(self) -> bool:
        with self._lock:
            return self.queued == 0 and self.inflight == 0

    def stats(self) -> dict:
        with self._lock:
            return {"queued": self.queued, "inflight": self.inflight,
                    "shed": self.shed, "max_queue": self.max_queue,
                    "max_inflight": self.max_inflight}


class RateLimiter:
    """Per-client token buckets (burst = one second of rate).

    ``max_rps is None`` disables limiting.  The client table is
    bounded: when it overflows, the stalest bucket is dropped -- a
    returning client then simply starts with a full bucket.
    """

    def __init__(self, max_rps: float | None, max_clients: int = 4096,
                 clock=time.monotonic):
        if max_rps is not None and max_rps <= 0:
            raise ValueError("max_rps must be positive")
        self.max_rps = max_rps
        self.max_clients = int(max_clients)
        self._clock = clock
        self._buckets: dict[str, list] = {}  # client -> [tokens, last]
        self._lock = threading.Lock()

    def allow(self, client: str) -> bool:
        if self.max_rps is None:
            return True
        burst = max(self.max_rps, 1.0)
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.max_clients:
                    stalest = min(self._buckets,
                                  key=lambda c: self._buckets[c][1])
                    del self._buckets[stalest]
                bucket = self._buckets[client] = [burst, now]
            tokens, last = bucket
            tokens = min(burst, tokens + (now - last) * self.max_rps)
            if tokens < 1.0:
                bucket[0], bucket[1] = tokens, now
                return False
            bucket[0], bucket[1] = tokens - 1.0, now
            return True

    def retry_after_s(self) -> float:
        """Seconds until one token is certain to be available."""
        if self.max_rps is None:
            return 0.0
        return 1.0 / self.max_rps
