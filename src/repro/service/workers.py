"""The daemon's worker pool, with a watchdog for wedged workers.

Kernels run on a fixed pool of worker threads.  A worker that exceeds
the wedge deadline (an injected hang, or a genuinely stuck kernel) is
*quarantined*: the watchdog flips the worker's cooperative ``abandoned``
flag, fails the task's promises so clients get their 503 immediately,
and spawns a replacement thread so pool capacity is restored.  The
quarantined thread exits at its next cooperative check -- the serving
analogue of the batch supervisor killing a cell at its deadline.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.logging_util import get_logger

__all__ = ["Promise", "WorkerCtx", "WorkerPool"]

_STOP = object()


class Promise:
    """A one-shot, first-writer-wins result slot."""

    __slots__ = ("_event", "_outcome")

    def __init__(self):
        self._event = threading.Event()
        self._outcome = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def fulfill(self, result) -> bool:
        if self._event.is_set():
            return False
        self._outcome = ("ok", result)
        self._event.set()
        return True

    def fail(self, kind: str, message: str) -> bool:
        if self._event.is_set():
            return False
        self._outcome = ("error", (kind, message))
        self._event.set()
        return True

    def wait(self, timeout_s: float | None):
        """('ok', result) | ('error', (kind, msg)) | None on timeout."""
        if not self._event.wait(timeout_s):
            return None
        return self._outcome


class WorkerCtx:
    """Per-task context a quarantined worker observes cooperatively."""

    __slots__ = ("abandoned",)

    def __init__(self):
        self.abandoned = threading.Event()


class _Worker:
    __slots__ = ("thread", "ctx", "busy_since", "task")

    def __init__(self):
        self.thread: threading.Thread | None = None
        self.ctx: WorkerCtx | None = None
        self.busy_since: float | None = None
        self.task = None


class WorkerPool:
    """Fixed-size thread pool + watchdog quarantine."""

    def __init__(self, n_workers: int, *, wedge_timeout_s: float,
                 telemetry=None, clock=time.monotonic):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self.wedge_timeout_s = float(wedge_timeout_s)
        self.telemetry = telemetry
        self._clock = clock
        self._queue: queue.Queue = queue.Queue()
        self._workers: list[_Worker] = []
        self._lock = threading.Lock()
        self._stopping = False
        self._watchdog: threading.Thread | None = None
        self.quarantined = 0
        self._log = get_logger("repro.service")

    # ------------------------------------------------------------------
    def start(self) -> None:
        with self._lock:
            for _ in range(self.n_workers):
                self._spawn_locked()
        self._watchdog = threading.Thread(
            target=self._watch, name="epg-serve-watchdog", daemon=True)
        self._watchdog.start()

    def _spawn_locked(self) -> _Worker:
        worker = _Worker()
        worker.thread = threading.Thread(
            target=self._run, args=(worker,), name="epg-serve-worker",
            daemon=True)
        self._workers.append(worker)
        worker.thread.start()
        return worker

    def submit(self, task) -> None:
        """``task`` needs ``run(ctx)`` and ``abandon(reason)``."""
        self._queue.put(task)

    # ------------------------------------------------------------------
    def _run(self, worker: _Worker) -> None:
        while True:
            task = self._queue.get()
            if task is _STOP:
                return
            ctx = WorkerCtx()
            with self._lock:
                worker.ctx = ctx
                worker.task = task
                worker.busy_since = self._clock()
            try:
                task.run(ctx)
            except Exception:  # the pool must survive anything
                self._log.exception("worker task failed")
                task.abandon("internal error")
            finally:
                with self._lock:
                    worker.ctx = None
                    worker.task = None
                    worker.busy_since = None
            if ctx.abandoned.is_set():
                # Quarantined: a replacement already took this slot.
                return

    def _watch(self) -> None:
        interval = max(min(self.wedge_timeout_s / 4, 0.25), 0.01)
        while not self._stopping:
            time.sleep(interval)
            now = self._clock()
            with self._lock:
                for worker in list(self._workers):
                    if worker.busy_since is None \
                            or worker.ctx is None \
                            or worker.ctx.abandoned.is_set():
                        continue
                    if now - worker.busy_since < self.wedge_timeout_s:
                        continue
                    worker.ctx.abandoned.set()
                    task = worker.task
                    self._workers.remove(worker)
                    self.quarantined += 1
                    self._spawn_locked()
                    self._log.warning(
                        "watchdog: worker wedged %.1fs; quarantined "
                        "and replaced", now - worker.busy_since)
                    if self.telemetry is not None:
                        self.telemetry.counter(
                            "epg_serve_worker_quarantines_total")
                    if task is not None:
                        # Outside nothing: fail fast so the waiting
                        # request gets its 503 now, not at its timeout.
                        task.abandon("worker wedged")

    # ------------------------------------------------------------------
    def stop(self, timeout_s: float = 5.0) -> None:
        self._stopping = True
        with self._lock:
            workers = list(self._workers)
        for _ in workers:
            self._queue.put(_STOP)
        deadline = self._clock() + timeout_s
        for worker in workers:
            worker.thread.join(max(deadline - self._clock(), 0.05))
        if self._watchdog is not None:
            self._watchdog.join(timeout_s)
