"""Command-line interface: the paper's five shell commands.

"Our framework breaks the process of characterizing performance into
five principal phases ... each of which requires no more than a single
shell command" (Sec. III)::

    epg setup      --output out/
    epg homogenize --output out/ --dataset kronecker --scale 14
    epg run        --output out/
    epg parse      --output out/
    epg analyze    --output out/ --figure fig2

plus ``epg all`` chaining everything and ``epg graphalytics`` for the
comparator tables.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.errors import (
    CacheError,
    CellQuarantinedError,
    CellTimeoutError,
    CheckpointError,
    ConfigError,
    DashboardError,
    DatasetError,
    GraphFormatError,
    LogParseError,
    PowerMeasurementError,
    ReproError,
    ServiceError,
    SystemCapabilityError,
    TraceError,
    ValidationError,
)
from repro.systems.registry import ALL_SYSTEM_NAMES, available_systems

__all__ = ["main", "build_parser", "EXIT_CODES", "EXIT_INTERRUPTED"]

#: Exit code for an interrupted run (SIGINT *or* SIGTERM): the shell
#: convention 128+SIGINT, documented as "resume with ``epg resume``".
EXIT_INTERRUPTED = 130

#: Commands whose interruption leaves a resumable checkpoint behind.
_RESUMABLE_COMMANDS = frozenset({"reproduce", "resume", "run", "all",
                                 "graphalytics"})

_FIGURES = ("fig2", "fig3", "fig4", "fig5", "fig6", "fig8", "fig9")

#: One distinct non-zero exit code per ReproError subclass, so shell
#: wrappers (the paper's natural habitat) can branch on failure kind.
EXIT_CODES: dict[type, int] = {
    ConfigError: 2,
    DatasetError: 3,
    SystemCapabilityError: 4,
    LogParseError: 5,
    ValidationError: 6,
    PowerMeasurementError: 7,
    CellTimeoutError: 8,
    CellQuarantinedError: 9,
    CheckpointError: 10,
    GraphFormatError: 11,
    TraceError: 12,
    CacheError: 13,
    ServiceError: 14,
    DashboardError: 15,
}


def _size(text: str) -> int:
    """argparse type for byte sizes with binary suffixes (``500M``)."""
    from repro.cache import parse_size

    try:
        return parse_size(text)
    except (ConfigError, CacheError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="epg",
        description="easy-parallel-graph-*: compare parallel graph "
                    "processing systems")
    p.add_argument("--verbose", "-v", action="store_true",
                   help="log pipeline progress to stderr")
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("--output", type=Path, required=True,
                        help="experiment output directory")
        sp.add_argument("--dataset", default="kronecker",
                        choices=("kronecker", "cit-patents", "dota-league",
                                 "snap-file"))
        sp.add_argument("--snap-path", type=Path, default=None)
        sp.add_argument("--scale", type=int, default=14,
                        help="Kronecker scale (2^scale vertices)")
        sp.add_argument("--systems", nargs="+", default=None,
                        choices=ALL_SYSTEM_NAMES)
        sp.add_argument("--algorithms", nargs="+",
                        default=["bfs", "sssp", "pagerank"])
        sp.add_argument("--roots", type=int, default=32)
        sp.add_argument("--trials", type=int, default=1)
        sp.add_argument("--threads", type=int, nargs="+", default=[32])
        sp.add_argument("--seed", type=int, default=20170402)
        sp.add_argument("--max-retries", type=int, default=2,
                        help="retries per cell before quarantine")
        sp.add_argument("--cell-timeout", type=float, default=None,
                        help="per-attempt deadline in simulated seconds")
        sp.add_argument("--fault-spec", default=None,
                        help="inject deterministic faults, e.g. "
                             "'gap/bfs/t32:crash:2' (testing)")
        sp.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for the run phase "
                             "(default: one per CPU core; results are "
                             "identical at any value)")
        sp.add_argument("--shards", type=int, default=1,
                        help="worker processes per kernel execution "
                             "(sharded engine; outputs are "
                             "bit-identical at any value, see "
                             "docs/sharding.md)")
        sp.add_argument("--cache-dir", type=Path, default=None,
                        help="persistent artifact cache directory "
                             "(byte-transparent; see docs/cache.md)")
        sp.add_argument("--cache-max-bytes", type=_size, default=None,
                        metavar="SIZE",
                        help="cache LRU GC budget, e.g. 500M or 2G")

    for name, help_ in (
            ("setup", "phase 1: verify systems, persist config"),
            ("homogenize", "phase 2: generate per-system input files"),
            ("run", "phase 3: execute all experiment cells"),
            ("parse", "phase 4: parse native logs into results.csv"),
            ("analyze", "phase 5: print statistics / figure series"),
            ("all", "run all five phases")):
        sp = sub.add_parser(name, help=help_)
        common(sp)
        if name in ("analyze", "all"):
            sp.add_argument("--figure", choices=_FIGURES, default=None,
                            help="print one figure's data series")

    sp = sub.add_parser("graphalytics",
                        help="run the simulated Graphalytics comparator")
    common(sp)

    sp = sub.add_parser(
        "compare",
        help="statistical pairwise comparison from results.csv")
    sp.add_argument("--output", type=Path, required=True)
    sp.add_argument("--algorithm", default="bfs")
    sp.add_argument("--pair", nargs=2, metavar=("A", "B"),
                    required=True, choices=ALL_SYSTEM_NAMES)

    sp = sub.add_parser(
        "feasibility",
        help="predict whether experiments will finish (Sec. V)")
    sp.add_argument("--scale", type=int, required=True,
                    help="Kronecker scale of the intended workload")
    sp.add_argument("--threads", type=int, default=32)
    sp.add_argument("--time-limit", type=float, default=None,
                    help="per-kernel wall-clock budget in seconds")
    sp.add_argument("--systems", nargs="+", default=None,
                    choices=ALL_SYSTEM_NAMES)

    sp = sub.add_parser("viz", help="render SVG figures from results.csv")
    sp.add_argument("--output", type=Path, required=True,
                    help="experiment output directory (with results.csv)")
    sp.add_argument("--figures-dir", type=Path, default=None,
                    help="where to write SVGs (default <output>/figures)")

    sp = sub.add_parser(
        "reproduce",
        help="regenerate the paper's full evaluation into one report")
    sp.add_argument("--output", type=Path, required=True)
    sp.add_argument("--scale", type=int, default=12)
    sp.add_argument("--roots", type=int, default=8)
    sp.add_argument("--seed", type=int, default=20170402)
    sp.add_argument("--no-svg", action="store_true")
    sp.add_argument("--resume", action="store_true",
                    help="keep checkpoints: skip already-completed cells")
    sp.add_argument("--max-retries", type=int, default=2)
    sp.add_argument("--cell-timeout", type=float, default=None)
    sp.add_argument("--fault-spec", default=None)
    sp.add_argument("--trace", action="store_true",
                    help="record hierarchical spans + metrics under "
                         "<output>/trace/")
    sp.add_argument("--jobs", "-j", type=int, default=None,
                    help="worker processes for experiment cells "
                         "(default: one per CPU core; the report is "
                         "byte-identical at any value)")
    sp.add_argument("--shards", type=int, default=1,
                    help="worker processes per kernel execution "
                         "(the report is byte-identical at any value; "
                         "see docs/sharding.md)")
    sp.add_argument("--cache-dir", type=Path, default=None,
                    help="persistent artifact cache directory "
                         "(byte-transparent; see docs/cache.md)")
    sp.add_argument("--cache-max-bytes", type=_size, default=None,
                    metavar="SIZE",
                    help="cache LRU GC budget, e.g. 500M or 2G")

    sp = sub.add_parser(
        "resume",
        help="continue an interrupted 'epg reproduce' from its "
             "checkpoints")
    sp.add_argument("output", type=Path,
                    help="the interrupted suite's output directory")
    sp.add_argument("--jobs", "-j", type=int, default=None,
                    help="override the interrupted run's worker count")

    sp = sub.add_parser(
        "verify", help="check an experiment dir against provenance.json")
    sp.add_argument("--output", type=Path, required=True)

    sp = sub.add_parser(
        "trace",
        help="inspect a recorded trace (events.jsonl) from a traced run")
    sp.add_argument("output", type=Path,
                    help="run directory, trace directory, or events.jsonl")
    sp.add_argument("--validate", action="store_true",
                    help="check the span schema and print a summary")
    sp.add_argument("--strict", action="store_true",
                    help="fail on a truncated final line instead of "
                         "tolerating it (a live or hard-killed run "
                         "legitimately leaves one)")
    sp.add_argument("--chrome", action="store_true",
                    help="write Chrome trace-event JSON (trace.json) "
                         "next to the event log")
    sp.add_argument("--svg", action="store_true",
                    help="render the SVG timeline next to the event log")
    sp.add_argument("--depth", type=int, default=None,
                    help="limit the printed span-tree depth")

    sp = sub.add_parser(
        "metrics",
        help="print a Prometheus snapshot replayed from a trace")
    sp.add_argument("output", type=Path,
                    help="run directory, trace directory, or events.jsonl")
    sp.add_argument("--json", action="store_true",
                    help="JSON snapshot instead of Prometheus text")

    sp = sub.add_parser(
        "traces", help="render captured power traces (CSV) to SVG")
    sp.add_argument("--output", type=Path, required=True,
                    help="experiment directory with traces/ inside")

    sp = sub.add_parser(
        "cache", help="inspect or maintain an artifact cache directory")
    sp.add_argument("action", choices=("ls", "gc", "verify", "clear"),
                    help="ls: list entries; gc: evict LRU entries over "
                         "the byte budget; verify: re-hash every entry, "
                         "evicting corrupt ones; clear: remove all")
    sp.add_argument("--dir", type=Path, required=True, dest="cache_dir",
                    help="the cache directory (as passed to --cache-dir)")
    sp.add_argument("--max-bytes", type=_size, default=None,
                    metavar="SIZE",
                    help="byte budget for gc, e.g. 500M or 2G")

    sp = sub.add_parser(
        "stream",
        help="replay a seeded mutation stream through the incremental "
             "kernels (see docs/streaming.md)")
    sp.add_argument("--output", type=Path, required=True,
                    help="stream run directory (results CSV + trace)")
    sp.add_argument("--scale", type=int, default=10,
                    help="Kronecker scale of the event stream")
    sp.add_argument("--batches", type=int, default=8,
                    help="number of mutation batches")
    sp.add_argument("--batch-edges", type=int, default=64,
                    help="insert tuples per batch (before symmetrize)")
    sp.add_argument("--delete-frac", type=float, default=0.25,
                    help="deletes per batch as a fraction of "
                         "--batch-edges")
    sp.add_argument("--seed", type=int, default=20170402)
    sp.add_argument("--algorithms", nargs="+",
                    default=["bfs", "sssp", "pagerank"],
                    choices=("bfs", "sssp", "pagerank"),
                    help="kernels to keep incrementally repaired "
                         "(sssp implies a weighted stream)")
    sp.add_argument("--unweighted", action="store_true",
                    help="drop edge weights (excludes sssp)")
    sp.add_argument("--check", action="store_true",
                    help="verify every post-batch answer against the "
                         "from-scratch oracle")
    sp.add_argument("--trace", action="store_true",
                    help="record stream spans + metrics under "
                         "<output>/trace/")
    sp.add_argument("--cache-dir", type=Path, default=None,
                    help="artifact cache for the Kronecker tuples")

    sp = sub.add_parser(
        "serve",
        help="run the fault-tolerant query daemon (see docs/service.md)")
    sp.add_argument("--data-dir", type=Path, required=True,
                    help="daemon state root (graphs/ + served.json)")
    sp.add_argument("--graphs", nargs="+", default=[],
                    metavar="SPEC",
                    help="graphs to serve, e.g. kron:10 cit-patents "
                         "(omit to recover the roster from served.json)")
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument("--port", type=int, default=8750)
    sp.add_argument("--workers", type=int, default=2,
                    help="kernel worker threads")
    sp.add_argument("--shards", type=int, default=1,
                    help="worker processes per kernel execution in "
                         "the batch executor (bit-identical results; "
                         "see docs/sharding.md)")
    sp.add_argument("--max-queue", type=int, default=16,
                    help="admission queue bound; excess queries get 503")
    sp.add_argument("--max-inflight", type=int, default=4,
                    help="queries executing concurrently")
    sp.add_argument("--request-timeout", type=float, default=10.0,
                    help="per-request deadline in seconds")
    sp.add_argument("--wedge-timeout", type=float, default=None,
                    help="seconds before the watchdog quarantines a "
                         "wedged worker (default: request timeout / 2)")
    sp.add_argument("--breaker-failures", type=int, default=3,
                    help="consecutive failures that open a circuit")
    sp.add_argument("--batch-window", type=float, default=0.01,
                    help="linger seconds for same-graph coalescing")
    sp.add_argument("--max-batch", type=int, default=32)
    sp.add_argument("--max-resident-bytes", type=_size, default=None,
                    metavar="SIZE",
                    help="resident-graph LRU budget, e.g. 1.5G or 512k")
    sp.add_argument("--max-rps-per-client", type=float, default=None,
                    help="per-client token-bucket rate (429 over it)")
    sp.add_argument("--fault-spec", default=None,
                    help="server-side chaos injection, e.g. "
                         "'gap/bfs/t32:crash:5' (testing)")
    sp.add_argument("--seed", type=int, default=20170402)
    sp.add_argument("--cache-dir", type=Path, default=None,
                    help="artifact cache shared with batch runs")
    sp.add_argument("--trace", action="store_true",
                    help="record request spans + metrics under "
                         "<data-dir>/trace/")
    sp.add_argument("--drain-grace", type=float, default=15.0,
                    help="seconds SIGTERM waits for in-flight queries")

    sp = sub.add_parser(
        "dash",
        help="serve a live read-only dashboard over runs and daemons "
             "(see docs/dashboard.md)")
    sp.add_argument("root", type=Path, nargs="?", default=None,
                    help="a run directory, a parent of run directories, "
                         "or a serve data dir to watch")
    sp.add_argument("--serve-url", default=None,
                    help="base URL of a live `epg serve` daemon for "
                         "the service page, e.g. http://127.0.0.1:8750")
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument("--port", type=int, default=8780)
    sp.add_argument("--history", type=int, default=512,
                    help="metric-history snapshots kept per run")
    sp.add_argument("--max-depth", type=int, default=6,
                    help="span nesting depth rendered in the live "
                         "timeline SVG (0 = unlimited)")

    sp = sub.add_parser(
        "loadgen",
        help="drive a running daemon with seeded traffic and report")
    sp.add_argument("--url", default="http://127.0.0.1:8750",
                    help="daemon base URL")
    sp.add_argument("--duration", type=float, default=10.0)
    sp.add_argument("--clients", type=int, default=4)
    sp.add_argument("--mode", choices=("closed", "open"),
                    default="closed",
                    help="closed: back-to-back per client; open: paced "
                         "arrivals at --rps regardless of completions")
    sp.add_argument("--rps", type=float, default=None,
                    help="target arrival rate (open-loop mode)")
    sp.add_argument("--systems", nargs="+",
                    default=["gap", "graph500"],
                    choices=ALL_SYSTEM_NAMES)
    sp.add_argument("--algorithms", nargs="+", default=["bfs"])
    sp.add_argument("--threads", type=int, default=32)
    sp.add_argument("--seed", type=int, default=20170402)
    sp.add_argument("--report", type=Path, default=None,
                    help="write the JSON report here")
    sp.add_argument("--dash-url", default=None,
                    help="base URL of a running `epg dash`; the report "
                         "gains a watch-live hint to its service page")

    sub.add_parser("systems", help="list installed systems")
    sub.add_parser("datasets", help="list the dataset catalog")
    return p


def _config_from_args(args) -> ExperimentConfig:
    from repro.parallel import resolve_jobs

    return ExperimentConfig(
        output_dir=args.output,
        dataset=args.dataset,
        snap_path=args.snap_path,
        scale=args.scale,
        systems=tuple(args.systems) if args.systems else ALL_SYSTEM_NAMES,
        algorithms=tuple(args.algorithms),
        n_roots=args.roots,
        n_trials=args.trials,
        thread_counts=tuple(args.threads),
        seed=args.seed,
        max_retries=args.max_retries,
        cell_timeout_s=args.cell_timeout,
        fault_spec=args.fault_spec,
        jobs=resolve_jobs(args.jobs),
        shards=args.shards,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
    )


def _exit_code(exc: ReproError) -> int:
    for klass, code in EXIT_CODES.items():
        if isinstance(exc, klass):
            return code
    return 1


def _warn_if_degraded(root: Path) -> None:
    """Exit-0-with-warning path: the suite finished, but degraded."""
    from repro.resilience import SuiteCheckpoint

    cells = SuiteCheckpoint.scan_quarantined(root)
    if cells:
        shown = ", ".join(cells[:8]) + (" ..." if len(cells) > 8 else "")
        print(f"epg: warning: completed degraded; {len(cells)} "
              f"quarantined cell(s): {shown}", file=sys.stderr)


def _install_termination_handler() -> None:
    """Make SIGTERM behave like SIGINT for long-running commands.

    ``kill <pid>`` (the default signal cluster schedulers and CI
    runners send) must leave the same resumable state Ctrl-C does: the
    handler flips the process-wide drain flag -- so in-flight
    supervisors quarantine instead of scheduling retries -- and raises
    :class:`KeyboardInterrupt`, which :func:`main` turns into the
    documented checkpoint-and-exit-130 path.
    """
    import signal

    def _on_sigterm(signum, frame):
        from repro.resilience import request_drain

        request_drain()
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def main(argv: list[str] | None = None) -> int:
    """Entry point: dispatch, mapping framework errors to exit codes.

    Every :class:`ReproError` becomes a one-line stderr message and a
    distinct non-zero exit code (see :data:`EXIT_CODES`) instead of a
    traceback; a suite that completes with quarantined cells exits 0
    with a degraded-completion warning.  SIGINT and SIGTERM both exit
    :data:`EXIT_INTERRUPTED` after the checkpoint has recorded every
    completed cell, so the run can continue with ``epg resume``.
    """
    args = build_parser().parse_args(argv)

    if getattr(args, "verbose", False):
        from repro.logging_util import enable_console_logging

        enable_console_logging()

    resumable = args.command in _RESUMABLE_COMMANDS
    if resumable:
        _install_termination_handler()

    try:
        return _dispatch(args)
    except KeyboardInterrupt:
        output = getattr(args, "output", None)
        hint = (f"; checkpoint saved, continue with `epg resume {output}`"
                if resumable and output is not None else "")
        print(f"epg: interrupted{hint}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ReproError as exc:
        print(f"epg: {type(exc).__name__}: {exc}", file=sys.stderr)
        return _exit_code(exc)


def _dispatch(args) -> int:
    if args.command == "systems":
        for s in available_systems():
            print(s)
        return 0

    if args.command == "datasets":
        from repro.datasets.catalog import catalog

        for entry in catalog():
            size = ("(synthetic family)" if entry.full_vertices is None
                    else f"full size {entry.full_vertices:,} vertices / "
                         f"{entry.full_edges:,} edges")
            flags = (("directed" if entry.directed else "undirected")
                     + ", "
                     + ("weighted" if entry.weighted else "unweighted"))
            print(f"{entry.name:<14}{entry.kind:<20}{flags:<24}{size}")
            print(f"{'':14}{entry.description}")
        return 0

    if args.command == "reproduce":
        from repro.core.suite import run_paper_suite
        from repro.parallel import resolve_jobs

        report = run_paper_suite(args.output, scale=args.scale,
                                 n_roots=args.roots, seed=args.seed,
                                 render_svg=not args.no_svg,
                                 resume=args.resume,
                                 max_retries=args.max_retries,
                                 cell_timeout_s=args.cell_timeout,
                                 fault_spec=args.fault_spec,
                                 trace=args.trace,
                                 jobs=resolve_jobs(args.jobs),
                                 shards=args.shards,
                                 cache_dir=args.cache_dir,
                                 cache_max_bytes=args.cache_max_bytes)
        print(f"wrote {report}")
        _warn_if_degraded(args.output)
        return 0

    if args.command == "resume":
        from repro.core.suite import resume_paper_suite

        report = resume_paper_suite(args.output, jobs=args.jobs)
        print(f"wrote {report}")
        _warn_if_degraded(args.output)
        return 0

    if args.command == "compare":
        from repro.core.stats import compare_systems

        records = Experiment.load_csv(args.output / "results.csv")
        a, b = args.pair
        verdict = compare_systems(records, a, b, args.algorithm)
        print(verdict.summary())
        print(f"  {a}: median {verdict.median_a:.4g}s, 95% CI "
              f"[{verdict.ci_a[0]:.4g}, {verdict.ci_a[1]:.4g}]")
        print(f"  {b}: median {verdict.median_b:.4g}s, 95% CI "
              f"[{verdict.ci_b[0]:.4g}, {verdict.ci_b[1]:.4g}]")
        return 0

    if args.command == "feasibility":
        from repro.core.feasibility import WorkloadSize, check_feasibility
        from repro.systems import calibration

        size = WorkloadSize.kronecker(args.scale)
        print(f"workload: kron-scale{args.scale} "
              f"({size.n_vertices:,} vertices, {size.n_arcs:,} arcs)")
        systems = args.systems or list(ALL_SYSTEM_NAMES)
        header = (f"{'system':<12}{'algorithm':<11}{'est time':>12}"
                  f"{'est memory':>13}  verdict")
        print(header)
        print("-" * len(header))
        for system in systems:
            for algorithm in sorted(calibration._ANCHORS.get(system, {})):
                v = check_feasibility(
                    system, algorithm, size, n_threads=args.threads,
                    time_limit_s=args.time_limit)
                verdict = ("OK" if v.feasible
                           else f"NO ({v.limiting_factor})")
                print(f"{system:<12}{algorithm:<11}"
                      f"{v.est_runtime_s:>11.3g}s"
                      f"{v.est_memory_bytes / 1e9:>11.2f}GB  {verdict}")
        return 0

    if args.command == "trace":
        from repro.observability import (
            render_svg,
            render_text,
            resolve_events_path,
            tail_events,
            validate_events,
            write_chrome_trace,
        )

        path = resolve_events_path(args.output)
        events, truncated = tail_events(path, strict=args.strict)
        if args.validate:
            stats = validate_events(events, truncated_tail=truncated)
            orphaned = (f", {stats['orphans']} orphaned "
                        "(interrupted run)" if stats["orphans"] else "")
            torn = (", truncated final line (in-flight append?)"
                    if truncated else "")
            print(f"{path}: valid; {stats['spans']} spans / "
                  f"{stats['events']} events{orphaned}{torn}, sim end "
                  f"{stats['sim_end_s']:.3f}s, categories: "
                  + ", ".join(stats["categories"]))
        if args.chrome:
            out = write_chrome_trace(events, path.parent / "trace.json")
            print(f"wrote {out}")
        if args.svg:
            render_svg(events, path.parent / "timeline.svg")
            print(f"wrote {path.parent / 'timeline.svg'}")
        if not (args.validate or args.chrome or args.svg):
            print(render_text(events, max_depth=args.depth), end="")
        return 0

    if args.command == "metrics":
        import json

        from repro.observability import derive_metrics, read_events

        registry = derive_metrics(read_events(args.output))
        if args.json:
            print(json.dumps(registry.to_dict(), indent=2,
                             sort_keys=True))
        else:
            print(registry.to_prometheus(), end="")
        return 0

    if args.command == "verify":
        from repro.core.provenance import verify

        ok, problems = verify(args.output)
        if ok:
            print(f"{args.output}: provenance verified")
            return 0
        for problem in problems:
            print(f"{args.output}: {problem}")
        return 1

    if args.command == "traces":
        import numpy as np

        from repro.power.wattprof import PowerTrace

        tdir = args.output / "traces"
        csvs = sorted(tdir.glob("*.csv")) if tdir.is_dir() else []
        if not csvs:
            print(f"no traces under {tdir} (run with "
                  "capture_power_traces=True)")
            return 1
        for csv in csvs:
            body = np.loadtxt(csv, delimiter=",", skiprows=1, ndmin=2)
            ts = body[:, 0]
            hz = (1.0 / float(np.median(np.diff(ts)))
                  if ts.size > 1 else 1000.0)
            trace = PowerTrace(timestamps_s=ts, pkg_watts=body[:, 1],
                               dram_watts=body[:, 2], sample_hz=hz)
            svg = csv.with_suffix(".svg")
            trace.to_svg(svg, title=csv.stem)
            print(svg)
        return 0

    if args.command == "cache":
        return _dispatch_cache(args)

    if args.command == "stream":
        return _dispatch_stream(args)

    if args.command == "serve":
        from repro.service import QueryDaemon, ServeConfig

        cfg = ServeConfig(
            data_dir=args.data_dir, graphs=tuple(args.graphs),
            host=args.host, port=args.port, workers=args.workers,
            shards=args.shards,
            max_queue=args.max_queue, max_inflight=args.max_inflight,
            request_timeout_s=args.request_timeout,
            wedge_timeout_s=args.wedge_timeout,
            breaker_failures=args.breaker_failures,
            batch_window_s=args.batch_window,
            max_batch=args.max_batch,
            max_resident_bytes=args.max_resident_bytes,
            max_rps_per_client=args.max_rps_per_client,
            fault_spec=args.fault_spec, seed=args.seed,
            cache_dir=args.cache_dir,
            trace_dir=(args.data_dir / "trace" if args.trace
                       else None),
            drain_grace_s=args.drain_grace)
        return QueryDaemon(cfg).serve_forever()

    if args.command == "dash":
        from repro.dashboard import DashConfig, DashboardServer

        cfg = DashConfig(root=args.root, serve_url=args.serve_url,
                         host=args.host, port=args.port,
                         history=args.history,
                         max_depth=args.max_depth)
        return DashboardServer(cfg).serve_forever()

    if args.command == "loadgen":
        from repro.service import LoadGenerator

        gen = LoadGenerator(
            args.url, duration_s=args.duration, clients=args.clients,
            mode=args.mode, rps=args.rps, seed=args.seed,
            systems=tuple(args.systems),
            algorithms=tuple(args.algorithms),
            n_threads=args.threads)
        report = gen.run()
        print(report.summary(dash_url=args.dash_url))
        if args.report is not None:
            path = LoadGenerator.write_report(report, args.report)
            print(f"wrote {path}")
        if report.dirty_responses:
            raise ServiceError(
                f"{report.dirty_responses} dirty response(s): see "
                "status counts above")
        return 0

    if args.command == "viz":
        from repro.core.analysis import Analysis
        from repro.viz import render_all_figures

        records = Experiment.load_csv(args.output / "results.csv")
        figures_dir = args.figures_dir or (args.output / "figures")
        rendered = render_all_figures(Analysis(records), figures_dir)
        for fig, paths in sorted(rendered.items()):
            for p in paths:
                print(p)
        return 0

    if args.command == "graphalytics":
        from repro.graphalytics import GraphalyticsHarness, render_table

        config = _config_from_args(args)
        exp = Experiment(config)
        exp.setup()
        dataset = exp.homogenize()
        harness = GraphalyticsHarness(machine=config.machine)
        results = harness.run_matrix(dataset)
        print(render_table(results))
        return 0

    config = _config_from_args(args)
    exp = Experiment(config)

    if args.command == "setup":
        systems = exp.setup()
        print(f"installed systems: {', '.join(systems)}")
    elif args.command == "homogenize":
        exp.setup()
        ds = exp.homogenize()
        print(f"homogenized {ds.name}: n={ds.n_vertices} m={ds.n_edges} "
              f"-> {ds.directory}")
    elif args.command == "run":
        exp.setup()
        exp.homogenize()
        paths = exp.run()
        print(f"wrote {len(paths)} log files under "
              f"{config.output_dir / 'logs'}")
        _warn_if_degraded(config.output_dir)
    elif args.command == "parse":
        csv = exp.parse()
        print(f"wrote {csv}")
    elif args.command in ("analyze", "all"):
        if args.command == "all":
            analysis = exp.run_all()
        else:
            analysis = exp.analyze()
        from repro.core.report import figure_series, format_box_table

        if args.figure:
            print(figure_series(analysis, args.figure))
        else:
            print(format_box_table(
                "Kernel time by (system, algorithm)",
                {f"{k[0]}/{k[1]}": v
                 for k, v in analysis.box("time").items()}))
        if args.command == "all":
            _warn_if_degraded(config.output_dir)
    return 0


def _dispatch_stream(args) -> int:
    """``epg stream --output <dir> [--scale S --check --trace ...]``."""
    from repro.observability.tracer import Tracer
    from repro.streaming import (
        StreamReplay,
        StreamSpec,
        build_scenario,
        write_results_csv,
    )

    weighted = not args.unweighted
    if "sssp" in args.algorithms and not weighted:
        raise ConfigError("--unweighted excludes sssp; drop one of them")
    spec = StreamSpec(scale=args.scale, n_batches=args.batches,
                      batch_edges=args.batch_edges,
                      delete_fraction=args.delete_frac,
                      seed=args.seed, weighted=weighted)
    cache = None
    if args.cache_dir is not None:
        from repro.cache import ArtifactCache

        cache = ArtifactCache(args.cache_dir)
    scenario = build_scenario(spec, cache=cache)

    args.output.mkdir(parents=True, exist_ok=True)
    tracer = (Tracer(args.output / "trace") if args.trace else Tracer())
    try:
        replay = StreamReplay(scenario, algorithms=tuple(args.algorithms),
                              tracer=tracer, check=args.check)
        results = replay.run()
    finally:
        tracer.close()

    csv = args.output / "stream_results.csv"
    write_results_csv(results, csv)
    inserted = sum(r.n_inserted for r in results)
    removed = sum(r.n_removed for r in results)
    checked = sum(r.checked for r in results)
    print(f"{spec.name}: {len(results)} batches over "
          f"{scenario.n_vertices} vertices (root {scenario.root}); "
          f"+{inserted} / -{removed} arcs, final {results[-1].n_arcs}"
          + (f"; {checked} oracle checks passed" if args.check else ""))
    print(f"wrote {csv}")
    return 0


def _dispatch_cache(args) -> int:
    """``epg cache ls|gc|verify|clear --dir <cache>``."""
    from repro.cache import ArtifactCache

    if not args.cache_dir.is_dir():
        raise CacheError(f"{args.cache_dir}: not a cache directory")
    cache = ArtifactCache(args.cache_dir, max_bytes=args.max_bytes)

    if args.action == "ls":
        entries = cache.entries()
        for e in entries:
            print(f"{e.key}  {e.kind:<16}{e.size_bytes:>12}  "
                  f"last used {e.last_used}")
        total = cache.total_bytes()
        print(f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
              f"{total} bytes")
        return 0

    if args.action == "gc":
        evicted = cache.gc(args.max_bytes)
        for key in evicted:
            print(f"evicted {key}")
        print(f"{len(evicted)} evicted, {cache.total_bytes()} bytes kept")
        return 0

    if args.action == "verify":
        problems = cache.verify()
        for problem in problems:
            print(problem)
        n = len(cache.entries())
        if problems:
            print(f"{len(problems)} corrupt entr"
                  f"{'y' if len(problems) == 1 else 'ies'} evicted, "
                  f"{n} kept")
            return 1
        print(f"{n} entr{'y' if n == 1 else 'ies'} verified")
        return 0

    # clear
    n = cache.clear()
    print(f"removed {n} entr{'y' if n == 1 else 'ies'}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
