"""Persistent content-addressed artifact cache.

``epg reproduce`` pays its data-preparation cost on every invocation:
the Kronecker generator, eight homogenized file formats, and one
parse-and-build per (system, thread-count) pairing per worker process.
The paper's EPG* design separates *preparation* from *measurement*
precisely so prep is paid once; this package makes that literal across
invocations (and across worker processes) with an on-disk store in the
spirit of the GAP Benchmark Suite's serialized ``.sg`` graphs:

* **Layer 1 -- dataset prep.**  Generated Kronecker edge lists are
  memoized under a digest of their :class:`KroneckerSpec`; homogenized
  dataset directories under a digest of the source edge list plus the
  homogenization recipe (root count, seed).
* **Layer 2 -- loaded graphs.**  Each system's built structure
  (CSR/DCSR arrays) is stored as one ``.npy`` file per array, so the
  parent process materializes a graph once and every worker maps it
  back read-only with ``np.load(mmap_mode="r")`` -- zero copies, no
  per-worker deserialization.

Entries are verified against stored digests before use; a corrupt
entry is evicted and regenerated, never trusted.  The cache is
*byte-transparent*: REPORT.md, provenance, and the trace are identical
with the cache hot, cold, or disabled (hence the cache knobs are
excluded from :meth:`ExperimentConfig.to_dict`, like ``jobs``).
"""

from repro.cache.keys import (
    edgelist_digest,
    homogenize_key,
    kronecker_key,
    loaded_graph_key,
)
from repro.cache.prewarm import prewarm_loaded_graphs
from repro.cache.store import ArtifactCache, parse_size

__all__ = ["ArtifactCache", "parse_size", "prewarm_loaded_graphs",
           "edgelist_digest", "homogenize_key", "kronecker_key",
           "loaded_graph_key"]
