"""Cache keys: content digests of the things that determine an artifact.

Every key is the BLAKE2b digest (the same primitive
:func:`repro.core.provenance.digest_file` uses) of a canonical-JSON
description of *everything* that affects the artifact's bytes -- spec
fields, source-data digests, recipe parameters, and a schema version
bumped whenever the stored layout changes.  Two configurations that
would produce identical bytes share an entry; anything that could
change a byte changes the key.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

__all__ = ["CACHE_SCHEMA_VERSION", "digest_json", "edgelist_digest",
           "kronecker_key", "homogenize_key", "input_digest",
           "loaded_graph_key"]

#: Bump whenever the on-disk layout of any cached artifact changes;
#: part of every key, so stale-format entries simply stop matching.
CACHE_SCHEMA_VERSION = 1


def _hasher():
    return hashlib.blake2b(digest_size=16)


def digest_json(obj) -> str:
    """Digest of the canonical JSON rendering of ``obj``."""
    h = _hasher()
    h.update(json.dumps(obj, sort_keys=True, separators=(",", ":"),
                        default=str).encode("utf-8"))
    return h.hexdigest()


def edgelist_digest(edges) -> str:
    """Digest of an :class:`~repro.graph.edgelist.EdgeList`'s full
    content: shape metadata plus the raw src/dst/weight bytes."""
    h = _hasher()
    h.update(json.dumps({
        "n": int(edges.n_vertices), "m": int(edges.n_edges),
        "directed": bool(edges.directed), "name": edges.name,
        "weighted": edges.weights is not None,
    }, sort_keys=True).encode("utf-8"))
    h.update(np.ascontiguousarray(edges.src).tobytes())
    h.update(np.ascontiguousarray(edges.dst).tobytes())
    if edges.weights is not None:
        h.update(np.ascontiguousarray(edges.weights).tobytes())
    return h.hexdigest()


def kronecker_key(spec) -> str:
    """Key for a generated Kronecker edge list: the full spec."""
    return digest_json({
        "kind": "kronecker", "v": CACHE_SCHEMA_VERSION,
        "scale": spec.scale, "edge_factor": spec.edge_factor,
        "a": spec.a, "b": spec.b, "c": spec.c,
        "seed": spec.seed, "weighted": spec.weighted,
    })


def homogenize_key(edges, n_roots: int, seed: int) -> str:
    """Key for a homogenized dataset tree: source bytes + recipe."""
    return digest_json({
        "kind": "homogenize", "v": CACHE_SCHEMA_VERSION,
        "edges": edgelist_digest(edges),
        "n_roots": int(n_roots), "seed": int(seed),
    })


def input_digest(path: Path) -> str:
    """Digest of one homogenized input file (or file directory)."""
    from repro.core.provenance import digest_file

    path = Path(path)
    if path.is_dir():
        return digest_json({f.name: digest_file(f)
                            for f in sorted(path.iterdir()) if f.is_file()})
    return digest_file(path)


def loaded_graph_key(system, dataset) -> str:
    """Key for one system's built graph structure.

    Covers the input file's bytes, the dataset's shape metadata, the
    system name, and the system's build-affecting knobs
    (:meth:`GraphSystem._cache_token` -- e.g. PowerGraph's partition
    count, GAP's weight dtype).  Thread count is deliberately absent:
    the built arrays are thread-invariant, only their *pricing* depends
    on ``n_threads``, and pricing is re-simulated on every hit.
    """
    return digest_json({
        "kind": "graph", "v": CACHE_SCHEMA_VERSION,
        "system": system.name,
        "input": input_digest(dataset.path(system.input_key)),
        "dataset": {"name": dataset.name,
                    "n_vertices": int(dataset.n_vertices),
                    "directed": bool(dataset.directed),
                    "weighted": bool(dataset.weighted)},
        "token": system._cache_token(),
    })
