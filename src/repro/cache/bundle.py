"""Memmap-friendly array bundles: one ``.npy`` file per array.

A *bundle* is a directory of plain ``numpy.save`` files, one per named
array.  Reading maps each file with ``np.load(mmap_mode="r")``: the
arrays are backed read-only by the page cache, so when several worker
processes open the same bundle they share one physical copy of the
graph -- the zero-copy half of the cache's contract.  Plain ``.npy``
(not ``.npz``) is deliberate: zip members cannot be memory-mapped.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import CacheError

__all__ = ["write_arrays", "read_arrays"]


def write_arrays(directory: str | Path, arrays: dict) -> list[Path]:
    """Write ``{name: array}`` as ``<directory>/<name>.npy`` files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, arr in arrays.items():
        if os.sep in name or name.startswith("."):
            raise CacheError(f"invalid bundle array name {name!r}")
        path = directory / f"{name}.npy"
        np.save(path, np.ascontiguousarray(arr))
        paths.append(path)
    return paths


def read_arrays(directory: str | Path, *, mmap: bool = True) -> dict:
    """Load every ``.npy`` in ``directory`` as ``{name: array}``.

    With ``mmap=True`` each array is a read-only ``np.memmap`` view of
    the file; writes through it raise, which is exactly the contract a
    shared cache entry needs.
    """
    out = {}
    for path in sorted(Path(directory).glob("*.npy")):
        out[path.stem] = np.load(path, mmap_mode="r" if mmap else None)
    return out
