"""The content-addressed artifact store.

Layout (one directory per entry, fanned out by key prefix)::

    <root>/
        objects/<key[:2]>/<key>/
            meta.json       kind, payload digests, size, user metadata
            .lru            last-use stamp (monotonic integer text)
            <payload...>    the artifact's files (arrays, dataset tree)
        tmp/                in-flight entries (atomically renamed in)

Design points:

* **Atomic publication.**  An entry is built in ``tmp/`` and
  ``os.rename``\\ d into place; concurrent writers race benignly (the
  loser discards its copy -- both built identical bytes, that is what
  content addressing means).
* **Never trust the disk.**  ``get`` re-hashes every payload file
  against the digests recorded in ``meta.json`` (once per process per
  entry); a mismatch evicts the entry and reports a miss, so corruption
  costs a regeneration, never a wrong result.
* **LRU GC.**  Each hit refreshes the entry's ``.lru`` stamp;
  :meth:`gc` evicts stalest-first until the store fits ``max_bytes``.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import time
from dataclasses import dataclass
from pathlib import Path

from repro.cache.bundle import read_arrays, write_arrays
from repro.errors import CacheError, ConfigError
from repro.logging_util import get_logger

__all__ = ["ArtifactCache", "CacheEntry", "parse_size"]

_META = "meta.json"
_LRU = ".lru"

_SIZE_SUFFIXES = {"K": 2**10, "M": 2**20, "G": 2**30, "T": 2**40}

#: ``1.5G``, ``512k``, ``2GiB``, ``500 MB``, plain ``4096``.  The
#: number part is a plain decimal (no exponents, no ``inf``/``nan`` --
#: ``float()`` alone would take those); the suffix is a binary unit in
#: either case, with optional ``B``/``iB`` spellings.
_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*"
    r"(?:(?P<unit>[KkMmGgTt])(?:i?[Bb])?|[Bb])?\s*$")


def parse_size(text: str | int) -> int:
    """Parse ``"500M"``-style byte sizes to an int.

    Binary suffixes ``K``/``M``/``G``/``T`` in either case, optionally
    spelled ``KB``/``KiB`` etc., with fractional values allowed
    (``"1.5G"``, ``"512k"``).  Garbage raises a
    :class:`~repro.errors.ConfigError` naming the offending spec.
    """
    if isinstance(text, bool):
        raise ConfigError(f"bad size spec {text!r} (want e.g. "
                          "'500M', '1.5G', or plain bytes)")
    if isinstance(text, int):
        value = text
    else:
        m = _SIZE_RE.match(str(text))
        if m is None:
            raise ConfigError(f"bad size spec {text!r} (want e.g. "
                              "'500M', '1.5G', '512k', or plain bytes)")
        unit = m.group("unit")
        mult = _SIZE_SUFFIXES[unit.upper()] if unit else 1
        value = int(float(m.group("num")) * mult)
    if value < 1:
        raise ConfigError(f"size must be >= 1 byte, got {text!r}")
    return value


@dataclass(frozen=True)
class CacheEntry:
    """One entry's identity and bookkeeping, as ``epg cache ls`` shows."""

    key: str
    kind: str
    size_bytes: int
    last_used: int
    path: Path


class ArtifactCache:
    """Content-addressed store with digest verification and LRU GC.

    ``tracer`` is optional; cache traffic is counted into its *live*
    metrics registry only (``log=False``), never into ``events.jsonl``
    -- hit/miss patterns depend on what previous invocations left on
    disk, and the trace must stay byte-identical regardless.
    """

    def __init__(self, root: str | Path, *, max_bytes: int | None = None,
                 tracer=None):
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._tracer = tracer
        self._log = get_logger("repro.cache")
        #: Keys whose payload digests this process already re-checked;
        #: verification is per-process, not per-lookup.
        self._verified: set[str] = set()
        #: Plain counters for tests and ``epg cache``; the tracer copy
        #: feeds the registry, this one needs no observability stack.
        self.stats = {"hits": 0, "misses": 0, "stores": 0, "evictions": 0}

    @staticmethod
    def from_config(config, tracer=None) -> "ArtifactCache | None":
        """Build the cache an :class:`ExperimentConfig` asks for, or
        ``None`` when caching is off (no ``cache_dir``, or disabled)."""
        if not getattr(config, "cache_active", False):
            return None
        return ArtifactCache(config.cache_dir,
                             max_bytes=config.cache_max_bytes,
                             tracer=tracer)

    # ------------------------------------------------------------------
    # Lookup / publication
    # ------------------------------------------------------------------
    def _entry_dir(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / key

    def contains(self, key: str) -> bool:
        """Presence probe: no stats, no verification, no LRU touch."""
        return (self._entry_dir(key) / _META).exists()

    def get(self, key: str, kind: str = "artifact") -> Path | None:
        """Return the entry directory for ``key``, or ``None`` on miss.

        Verifies payload digests on this process's first sight of the
        entry; corruption evicts it (logged as a warning) and reports a
        miss so the caller regenerates.
        """
        entry = self._entry_dir(key)
        meta = self._read_meta(entry)
        if meta is None:
            self._miss(kind, key)
            return None
        if key not in self._verified:
            problem = self._check(entry, meta)
            if problem is not None:
                self._log.warning("cache evict %s %s: %s (regenerating)",
                                  meta.get("kind", kind), key, problem)
                self._evict(entry)
                self._miss(kind, key)
                return None
            self._verified.add(key)
        self._touch(entry)
        self.stats["hits"] += 1
        self._count("epg_cache_hits_total", meta.get("kind", kind))
        self._log.info("cache hit %s %s", meta.get("kind", kind), key)
        return entry

    def put(self, key: str, kind: str, build, meta: dict | None = None
            ) -> Path:
        """Publish an entry: ``build(tmp_dir)`` writes the payload
        files, then the directory is digested and renamed into place.
        Returns the (possibly pre-existing) entry directory.
        """
        final = self._entry_dir(key)
        if (final / _META).exists():
            return final
        tmp = self.root / "tmp" / f"{key}.{os.getpid()}"
        shutil.rmtree(tmp, ignore_errors=True)
        tmp.mkdir(parents=True)
        try:
            build(tmp)
            files, size = self._digest_tree(tmp)
            from repro.ioutil import atomic_write_json

            atomic_write_json(tmp / _META, {
                "key": key, "kind": kind, "size_bytes": size,
                "files": files, "meta": meta or {},
            })
            self._touch(tmp)
            final.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(tmp, final)
            except OSError:
                # Lost a publication race: an identical entry landed
                # first (content addressing makes the copies equal).
                shutil.rmtree(tmp, ignore_errors=True)
                return final
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self._verified.add(key)
        self.stats["stores"] += 1
        self._log.info("cache store %s %s (%d bytes)", kind, key, size)
        if self.max_bytes is not None:
            self.gc(self.max_bytes)
        self._gauge_bytes()
        return final

    # ------------------------------------------------------------------
    # Array-bundle convenience (layer 2)
    # ------------------------------------------------------------------
    def get_arrays(self, key: str, kind: str = "graph",
                   *, mmap: bool = True):
        """Hit: ``(arrays, meta)`` with memmap-backed arrays; miss: None."""
        entry = self.get(key, kind)
        if entry is None:
            return None
        meta = self._read_meta(entry) or {}
        return read_arrays(entry, mmap=mmap), meta.get("meta", {})

    def put_arrays(self, key: str, kind: str, arrays: dict,
                   meta: dict | None = None) -> Path:
        return self.put(key, kind, lambda tmp: write_arrays(tmp, arrays),
                        meta=meta)

    # ------------------------------------------------------------------
    # Maintenance (epg cache ls|gc|verify|clear)
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        objects = self.root / "objects"
        out = []
        if not objects.is_dir():
            return out
        for entry in sorted(objects.glob("??/*")):
            meta = self._read_meta(entry)
            if meta is None:
                continue
            out.append(CacheEntry(
                key=meta.get("key", entry.name),
                kind=meta.get("kind", "?"),
                size_bytes=int(meta.get("size_bytes", 0)),
                last_used=self._stamp(entry), path=entry))
        return out

    def total_bytes(self) -> int:
        return sum(e.size_bytes for e in self.entries())

    def gc(self, max_bytes: int | None = None) -> list[str]:
        """Evict least-recently-used entries until the store fits
        ``max_bytes``; returns the evicted keys (stalest first)."""
        budget = self.max_bytes if max_bytes is None else max_bytes
        if budget is None:
            raise CacheError("gc needs a byte budget (cache_max_bytes "
                             "or --max-bytes)")
        entries = sorted(self.entries(),
                         key=lambda e: (e.last_used, e.key))
        total = sum(e.size_bytes for e in entries)
        evicted = []
        for entry in entries:
            if total <= budget:
                break
            self._log.info("cache evict %s %s (LRU, %d bytes)",
                           entry.kind, entry.key, entry.size_bytes)
            self._evict(entry.path)
            total -= entry.size_bytes
            evicted.append(entry.key)
        self._gauge_bytes()
        return evicted

    def verify(self) -> list[str]:
        """Re-hash every entry; evict and report the corrupt ones."""
        problems = []
        for entry in self.entries():
            meta = self._read_meta(entry.path)
            problem = None if meta is None else \
                self._check(entry.path, meta)
            if problem is not None:
                problems.append(f"{entry.kind} {entry.key}: {problem}")
                self._log.warning("cache evict %s %s: %s",
                                  entry.kind, entry.key, problem)
                self._evict(entry.path)
        self._verified.clear()
        self._gauge_bytes()
        return problems

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        n = len(self.entries())
        shutil.rmtree(self.root / "objects", ignore_errors=True)
        shutil.rmtree(self.root / "tmp", ignore_errors=True)
        self._verified.clear()
        self._gauge_bytes()
        return n

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _read_meta(self, entry: Path) -> dict | None:
        try:
            return json.loads((entry / _META).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def _check(self, entry: Path, meta: dict) -> str | None:
        """Digest-verify one entry; returns a problem string or None."""
        from repro.core.provenance import digest_file

        files = meta.get("files")
        if not isinstance(files, dict):
            return "meta.json lists no files"
        for rel, want in sorted(files.items()):
            path = entry / rel
            if not path.is_file():
                return f"missing payload file {rel}"
            if digest_file(path) != want:
                return f"digest mismatch in {rel}"
        return None

    def _digest_tree(self, tmp: Path) -> tuple[dict, int]:
        from repro.core.provenance import digest_file

        files, size = {}, 0
        for path in sorted(tmp.rglob("*")):
            if path.is_file():
                files[path.relative_to(tmp).as_posix()] = digest_file(path)
                size += path.stat().st_size
        return files, size

    def _touch(self, entry: Path) -> None:
        try:
            (entry / _LRU).write_text(str(time.time_ns()),
                                      encoding="utf-8")
        except OSError:
            pass  # a read-only cache still serves hits

    def _stamp(self, entry: Path) -> int:
        try:
            return int((entry / _LRU).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return 0

    def _evict(self, entry: Path) -> None:
        shutil.rmtree(entry, ignore_errors=True)
        self.stats["evictions"] += 1
        self._verified.discard(entry.name)
        self._count("epg_cache_evictions_total", "entry")

    def _miss(self, kind: str, key: str) -> None:
        self.stats["misses"] += 1
        self._count("epg_cache_misses_total", kind)
        self._log.info("cache miss %s %s", kind, key)

    def _count(self, name: str, kind: str) -> None:
        if self._tracer is not None:
            self._tracer.counter(name, log=False, kind=kind)

    def _gauge_bytes(self) -> None:
        if self._tracer is not None:
            self._tracer.gauge("epg_cache_bytes",
                               float(self.total_bytes()), log=False)
