"""Parent-side graph materialization for process-parallel runs.

Without a cache, every worker process parses and builds every graph it
is handed -- ``jobs`` copies of the same CSR arrays in RAM and ``jobs``
redundant builds on the clock.  :func:`prewarm_loaded_graphs` runs in
the *parent* before the fan-out: it fills the layer-2 cache with every
(system, build-knobs) structure the cell matrix will need, so each
worker's ``load()`` degenerates to ``np.load(mmap_mode="r")`` over
files already in the page cache -- one physical copy, shared read-only
by all workers.
"""

from __future__ import annotations

from repro.errors import DatasetError, SystemCapabilityError
from repro.logging_util import get_logger

__all__ = ["prewarm_loaded_graphs"]


def prewarm_loaded_graphs(config, dataset, cache) -> int:
    """Materialize every cacheable loaded graph for ``config``'s cell
    matrix into ``cache``; returns how many entries were built (already
    cached structures are skipped, not rebuilt)."""
    from repro.cache.keys import loaded_graph_key
    from repro.systems import create_system

    log = get_logger("repro.cache")
    built = 0
    seen: set[str] = set()
    for n_threads in config.thread_counts:
        for name in config.systems:
            system = create_system(name, machine=config.machine,
                                   n_threads=n_threads)
            if system.kronecker_only and \
                    not dataset.name.startswith("kron"):
                continue
            if not any(system.supports(a) for a in config.algorithms):
                continue  # no cell will ever load this system
            try:
                key = loaded_graph_key(system, dataset)
            except DatasetError:
                continue  # no homogenized input for this system
            if key in seen:
                continue
            seen.add(key)
            if cache.contains(key):
                continue
            try:
                system.load(dataset, cache=cache)
                built += 1
            except SystemCapabilityError:
                continue
    if built:
        log.info("prewarmed %d graph structure(s) into %s",
                 built, cache.root)
    return built
