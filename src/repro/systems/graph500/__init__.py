"""Graph500 reference implementation (OpenMP flavor).

"The canonical BFS benchmark which consists of a specification and a
reference implementation ... We use a modified version most similar to
2.1.4 ... only the OpenMP version.  The Graph500 uses a compressed
sparse row (CSR) representation." (paper Sec. III-C)

Behavioural fidelity points:

* BFS only -- it provides nothing else;
* processes only the Kronecker graphs of its own generator;
* Benchmark 1 ("Search") structure: one timed construction of the CSR
  from the unsorted in-RAM tuple list, then all roots searched
  back-to-back in a single execution (Fig 2: "The Graph500 only
  constructs its graph once"; Fig 9: "we only get a single data point");
* level-synchronous top-down BFS over a visited bitmap with
  compare-and-swap parent claims -- whose cache-line contention at 2-4
  threads is the model behind its Fig 6 efficiency dip.
"""

from repro.systems.graph500.system import Graph500System

__all__ = ["Graph500System"]
