"""Graph500 kernel 2: level-synchronous top-down BFS with a bitmap.

Always top-down (the 2.1.4-era OpenMP reference predates
direction-optimization): every level gathers all out-slots of the
frontier, filters against the visited bitmap, and claims parents with
compare-and-swap semantics (modeled deterministically as lowest-source
wins).  Every frontier out-edge is examined, so the per-root work is
~``m`` arcs regardless of graph shape -- the reason the Graph500's
per-edge constant is the leanest but its examined-edge count the
highest (see calibration anchors).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.machine.threads import WorkProfile

__all__ = ["bfs_bitmap"]


def bfs_bitmap(csr: CSRGraph, root: int
               ) -> tuple[np.ndarray, np.ndarray, WorkProfile, dict]:
    """Return (parent, level, profile, stats) for one search key."""
    n = csr.n_vertices
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    parent[root] = root
    level[root] = 0
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    profile = WorkProfile()
    deg = csr.out_degrees()
    max_deg = float(deg.max()) if n else 0.0
    depth = 0
    examined_total = 0

    while frontier.size:
        depth += 1
        starts = csr.row_ptr[frontier]
        counts = csr.row_ptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        slots = np.repeat(starts - offsets, counts) + np.arange(total)
        nbrs = csr.col_idx[slots]
        srcs = np.repeat(frontier, counts)
        fresh = ~visited[nbrs]
        nbrs = nbrs[fresh]
        srcs = srcs[fresh]
        examined_total += total
        skew = min(max_deg / max(total, 1.0), 1.0)
        profile.add_round(units=total + frontier.size,
                          memory_bytes=9.0 * total, skew=skew)
        if nbrs.size == 0:
            break
        order = np.lexsort((srcs, nbrs))
        nbrs_s = nbrs[order]
        srcs_s = srcs[order]
        first = np.ones(nbrs_s.size, dtype=bool)
        first[1:] = nbrs_s[1:] != nbrs_s[:-1]
        new_v = nbrs_s[first]
        parent[new_v] = srcs_s[first]
        visited[new_v] = True
        level[new_v] = depth
        frontier = new_v

    stats = {"depth": depth, "edges_examined": examined_total}
    return parent, level, profile, stats
