"""Graph500 kernel 2: level-synchronous top-down BFS with a bitmap.

Always top-down (the 2.1.4-era OpenMP reference predates
direction-optimization): every level gathers all out-slots of the
frontier, filters against the visited bitmap, and claims parents with
compare-and-swap semantics (modeled deterministically as lowest-source
wins).  Every frontier out-edge is examined, so the per-root work is
~``m`` arcs regardless of graph shape -- the reason the Graph500's
per-edge constant is the leanest but its examined-edge count the
highest (see calibration anchors).

The expansion/claim loop is the shared
:func:`~repro.graph.frontier.gather_slots` +
:func:`~repro.graph.frontier.claim_first_parent` pair (bit-identical to
the old per-system lexsort idiom; ``docs/kernels.md``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.frontier import claim_first_parent, gather_slots
from repro.graph.scratch import scratch_for
from repro.machine.threads import WorkProfile

__all__ = ["bfs_bitmap"]


def bfs_bitmap(csr: CSRGraph, root: int
               ) -> tuple[np.ndarray, np.ndarray, WorkProfile, dict]:
    """Return (parent, level, profile, stats) for one search key."""
    n = csr.n_vertices
    scratch = scratch_for(csr, n, csr.n_edges)
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    parent[root] = root
    level[root] = 0
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    profile = WorkProfile()
    deg = csr.out_degrees()
    max_deg = float(deg.max()) if n else 0.0
    depth = 0
    examined_total = 0

    while frontier.size:
        depth += 1
        gs = gather_slots(csr.row_ptr, frontier, scratch)
        if gs.total == 0:
            break
        nbrs = csr.col_idx[gs.slots]
        srcs = np.repeat(frontier, gs.counts)
        examined_total += gs.total
        skew = min(max_deg / max(gs.total, 1.0), 1.0)
        profile.add_round(units=gs.total + frontier.size,
                          memory_bytes=9.0 * gs.total, skew=skew)
        new_v = claim_first_parent(nbrs, srcs, visited, parent, scratch)
        level[new_v] = depth
        frontier = new_v

    stats = {"depth": depth, "edges_examined": examined_total}
    return parent, level, profile, stats
