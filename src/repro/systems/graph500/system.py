"""Graph500 system wrapper.

Also exposes :meth:`Graph500System.run_benchmark1`, the full Benchmark 1
("Search") protocol: construct once, search all keys, report the
min/mean/max/TEPS statistics the reference code prints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import formats
from repro.datasets.homogenize import HomogenizedDataset
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.machine.threads import WorkProfile
from repro.systems.base import GraphSystem, KernelResult
from repro.systems.graph500.bfs import bfs_bitmap

__all__ = ["Graph500System", "Benchmark1Result"]


@dataclass
class Benchmark1Result:
    """Statistics the reference implementation prints after a run."""

    scale_hint: int
    construction_s: float
    bfs_times_s: list[float]
    edges_traversed: list[int]

    @property
    def min_time(self) -> float:
        return min(self.bfs_times_s)

    @property
    def max_time(self) -> float:
        return max(self.bfs_times_s)

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.bfs_times_s))

    @property
    def harmonic_mean_teps(self) -> float:
        """TEPS = traversed edges per second, harmonic-mean aggregated
        exactly as the spec requires (mean of times per edge)."""
        inv = [t / max(e, 1) for t, e in
               zip(self.bfs_times_s, self.edges_traversed)]
        return 1.0 / float(np.mean(inv))


class Graph500System(GraphSystem):
    """The Graph500 reference code (Sec. III-C item 1)."""

    name = "graph500"
    provides = frozenset({"bfs"})
    separable_construction = True
    input_key = "g500"
    kronecker_only = True

    # -- loading -------------------------------------------------------
    def _read_input(self, dataset: HomogenizedDataset) -> EdgeList:
        return formats.read_g500(dataset.path("g500"), name=dataset.name)

    def _build(self, edges: EdgeList, dataset: HomogenizedDataset):
        profile = WorkProfile()
        el = edges.symmetrized()
        m = el.n_edges
        # The reference builder: counting pass, prefix sums, placement.
        profile.add_round(units=m, memory_bytes=16.0 * m, skew=0.05)
        csr = CSRGraph.from_arrays(el.src, el.dst, el.n_vertices)
        profile.add_round(units=m, memory_bytes=24.0 * m, skew=0.05)
        return csr, profile

    def _n_arcs(self, data: CSRGraph) -> int:
        return data.n_edges

    # -- artifact cache ------------------------------------------------
    def _pack_data(self, data: CSRGraph):
        return data.to_arrays_map("g_"), {"n": data.n_vertices}

    def _unpack_data(self, arrays, meta, dataset) -> CSRGraph:
        return CSRGraph.from_arrays_map(arrays, "g_")

    # -- kernels -------------------------------------------------------
    def _run_bfs(self, loaded, root: int):
        if self.shards > 1:
            from repro.shard.drivers import shard_bfs_bitmap

            engine = self._shard_engine(loaded, loaded.data)
            parent, level, profile, stats = shard_bfs_bitmap(
                loaded.data, root, engine)
            self._note_shard_exchange("bfs", engine)
        else:
            parent, level, profile, stats = bfs_bitmap(loaded.data, root)
        counters = {"depth": float(stats["depth"]),
                    "edges_examined": float(stats["edges_examined"])}
        return ({"parent": parent, "level": level}, profile, None, counters)

    # -- Benchmark 1 protocol ------------------------------------------
    def run_benchmark1(self, loaded, roots: np.ndarray
                       ) -> tuple[Benchmark1Result, list[KernelResult]]:
        """Search all keys back-to-back, as the reference binary does.

        Note the consequence the paper highlights: because one execution
        covers all roots, EPG* gets a single power data point for the
        Graph500 (Fig 9) while per-root runtimes still come from the
        per-search timing the spec mandates.
        """
        results = [self.run(loaded, "bfs", root=int(r)) for r in roots]
        n_scale = max(int(np.ceil(np.log2(max(loaded.n_vertices, 2)))), 1)
        bench = Benchmark1Result(
            scale_hint=n_scale,
            construction_s=loaded.build_s or 0.0,
            bfs_times_s=[r.time_s for r in results],
            edges_traversed=[int(r.counters["edges_examined"])
                             for r in results],
        )
        return bench, results
