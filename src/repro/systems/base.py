"""The common system interface EPG* drives.

A :class:`GraphSystem` exposes exactly the surface the paper's shell
harness sees: load a homogenized dataset (producing read/construction
phase times), run one algorithm (producing a kernel time), and emit a
native-format log.  Internally each system computes real results with
its own data structures and strategies while recording a
:class:`~repro.machine.threads.WorkProfile` of the operations performed;
the shared machinery here prices that profile on the simulated machine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.datasets.homogenize import HomogenizedDataset
from repro.errors import SystemCapabilityError
from repro.graph.edgelist import EdgeList
from repro.graph.scratch import consume_counters
from repro.machine.spec import MachineSpec, haswell_server
from repro.machine.threads import SimResult, ThreadModel, WorkProfile
from repro.observability import Tracer
from repro.power.energy import PowerParams
from repro.systems import calibration

__all__ = ["GraphSystem", "LoadedGraph", "KernelResult", "ALGORITHMS"]

#: Algorithm identifiers used across the package.  ``bc`` and ``tc``
#: are the paper's Sec. V extension kernels (GAP provides them);
#: ``kcore``/``mis``/``cc`` widen the structural matrix over the shared
#: kernels (``cc`` is the Afforest/Shiloach-Vishkin alternative to the
#: label-propagation ``wcc``; see docs/algorithms.md).
ALGORITHMS = ("bfs", "sssp", "pagerank", "wcc", "cdlp", "lcc",
              "bc", "tc", "kcore", "mis", "cc")


@dataclass
class LoadedGraph:
    """A dataset ingested into one system's internal representation."""

    system: str
    name: str
    n_vertices: int
    n_arcs: int
    directed: bool
    weighted: bool
    #: Simulated seconds spent reading the input file from disk.
    read_s: float
    #: Simulated seconds spent building the data structure from the
    #: in-RAM tuples; ``None`` when the system fuses read+build
    #: (GraphBIG, PowerGraph -- paper Sec. III-B).
    build_s: float | None
    #: System-specific structure (CSR pair, DCSR, partition set, ...).
    data: Any
    #: Bytes of the input file actually read.
    input_bytes: int = 0

    @property
    def load_s(self) -> float:
        return self.read_s + (self.build_s or 0.0)


@dataclass
class KernelResult:
    """One algorithm execution: real outputs, priced time."""

    system: str
    algorithm: str
    time_s: float
    sim: SimResult
    profile: WorkProfile
    output: dict[str, np.ndarray]
    root: int | None = None
    iterations: int | None = None
    counters: dict[str, float] = field(default_factory=dict)


class GraphSystem(ABC):
    """Base class for the five reimplemented systems."""

    #: Registry name, e.g. ``"gap"``.
    name: ClassVar[str]
    #: Algorithms this system ships reference implementations for.
    provides: ClassVar[frozenset[str]]
    #: False when the system reads the file and builds the structure in
    #: one pass, making construction time unmeasurable (Sec. III-B).
    separable_construction: ClassVar[bool]
    #: Key of the homogenized input file this system reads.
    input_key: ClassVar[str]
    #: True for the Graph500, which only processes the synthetic graphs
    #: its own generator produces.
    kronecker_only: ClassVar[bool] = False

    def __init__(self, machine: MachineSpec | None = None,
                 n_threads: int = 32, shards: int = 1,
                 shard_strategy: str = "edge_blocks"):
        if n_threads < 1:
            raise SystemCapabilityError("n_threads must be >= 1")
        if shards < 1:
            raise SystemCapabilityError("shards must be >= 1")
        self.machine = machine or haswell_server()
        self.n_threads = int(n_threads)
        #: Multi-process execution width for the kernels that shard
        #: (``repro.shard``); 1 = the serial kernels.  Orthogonal to
        #: ``n_threads``, which is the *simulated* thread count being
        #: priced -- sharding changes who computes, never the numbers.
        self.shards = int(shards)
        self.shard_strategy = shard_strategy
        self.thread_model = ThreadModel(self.machine)
        #: Observability hook; the runner swaps in its live tracer.
        self.tracer = Tracer()

    # ------------------------------------------------------------------
    # Sharded execution support
    # ------------------------------------------------------------------
    def _shard_engine(self, loaded: "LoadedGraph", out, inn=None):
        """The persistent :class:`~repro.shard.engine.ShardEngine` for
        ``loaded``, created on first use and cached *on the loaded
        graph* so it lives exactly as long as the resident graph does
        (the engine's ``__del__``/atexit guards reap workers and
        shared-memory segments when the graph is evicted)."""
        from repro.shard.engine import ShardEngine

        engines = loaded.__dict__.setdefault("_shard_engines", {})
        key = (self.shards, self.shard_strategy, inn is not None)
        engine = engines.get(key)
        if engine is None or engine._closed:
            engine = ShardEngine(out, inn, n_shards=self.shards,
                                 strategy=self.shard_strategy)
            engines[key] = engine
        return engine

    def _note_shard_exchange(self, algorithm: str, engine) -> None:
        """Publish the engine's per-kernel exchange accounting as
        ``epg_shard_*`` counters (logged: they flow to events.jsonl,
        the live registry, and the dashboard's metrics pages; the
        REPORT reads none of them, preserving byte-identity)."""
        labels = {"system": self.name, "algorithm": algorithm,
                  "shards": engine.n_shards}
        if engine.rounds:
            self.tracer.counter("epg_shard_rounds_total",
                                float(engine.rounds), **labels)
        if engine.bytes_exchanged:
            self.tracer.counter("epg_shard_bytes_total",
                                float(engine.bytes_exchanged), **labels)
        if engine.partition.cut_edges:
            self.tracer.counter("epg_shard_cut_edges",
                                float(engine.partition.cut_edges),
                                **labels)

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------
    def supports(self, algorithm: str) -> bool:
        return algorithm in self.provides

    def require(self, algorithm: str) -> None:
        if not self.supports(algorithm):
            raise SystemCapabilityError(
                f"{self.name} provides no reference implementation of "
                f"{algorithm} (provides: {sorted(self.provides)})")

    @property
    def power(self) -> PowerParams:
        return calibration.power_params(self.name)

    @property
    def noise_sensitivity(self) -> float:
        return calibration.noise_sensitivity(self.name)

    # ------------------------------------------------------------------
    # Loading (template method)
    # ------------------------------------------------------------------
    def load(self, dataset: HomogenizedDataset,
             cache=None) -> LoadedGraph:
        """Ingest a homogenized dataset.

        Reads this system's native file (real I/O), builds the internal
        structure (real work), and prices both phases.  Systems with
        fused read+build report ``build_s=None`` and fold the
        construction cost into ``read_s`` (their "load" time).

        ``cache`` is an optional :class:`repro.cache.ArtifactCache`:
        on a hit the built arrays come back as read-only memmaps of the
        cached ``.npy`` files (zero copies, shared across worker
        processes) and the build's :class:`WorkProfile` is re-simulated
        for this instance's thread count -- the priced ``read_s`` /
        ``build_s`` are bit-identical to an uncached load, so caching
        never changes a reported number.
        """
        if self.kronecker_only and not dataset.name.startswith("kron"):
            raise SystemCapabilityError(
                f"{self.name} only runs graphs from its own Kronecker "
                f"generator, not {dataset.name!r}")
        path = dataset.path(self.input_key)
        n_bytes = (sum(f.stat().st_size for f in path.iterdir())
                   if path.is_dir() else path.stat().st_size)
        read_s = n_bytes / (calibration.read_rate_mbs(
            self._read_rate_key()) * 1e6)

        data, build_profile = self._cached_build(dataset, cache)
        build_sim = self.thread_model.simulate(
            build_profile, calibration.build_params(self.name, self.machine),
            self.n_threads)

        if self.separable_construction:
            return LoadedGraph(
                system=self.name, name=dataset.name,
                n_vertices=dataset.n_vertices, n_arcs=self._n_arcs(data),
                directed=dataset.directed, weighted=True,
                read_s=read_s, build_s=build_sim.time_s, data=data,
                input_bytes=n_bytes)
        return LoadedGraph(
            system=self.name, name=dataset.name,
            n_vertices=dataset.n_vertices, n_arcs=self._n_arcs(data),
            directed=dataset.directed, weighted=True,
            read_s=read_s + build_sim.time_s, build_s=None, data=data,
            input_bytes=n_bytes)

    def _cached_build(self, dataset: HomogenizedDataset, cache
                      ) -> tuple[Any, WorkProfile]:
        """Produce (data, build_profile), through ``cache`` when given.

        Layer 2 of the artifact cache: the built structure's arrays and
        the recorded build profile round-trip through one ``.npy``
        bundle keyed by input bytes + system + build knobs.  A corrupt
        or stale entry falls back to a fresh build (and is evicted).
        """
        key = None
        if cache is not None and self._pack_data is not None:
            from repro.cache.keys import loaded_graph_key

            key = loaded_graph_key(self, dataset)
            hit = cache.get_arrays(key, kind=f"graph:{self.name}")
            if hit is not None:
                arrays, meta = hit
                try:
                    data = self._unpack_data(arrays, meta, dataset)
                    profile = WorkProfile.from_arrays(
                        arrays["profile_units"], arrays["profile_mem"],
                        arrays["profile_skew"],
                        meta["profile_serial_units"])
                    return data, profile
                except Exception as exc:
                    cache._log.warning(
                        "cache entry %s unusable (%s: %s); rebuilding",
                        key, type(exc).__name__, exc)
                    cache._evict(cache._entry_dir(key))

        edges = self._read_input(dataset)
        data, profile = self._build(edges, dataset)
        if key is not None:
            packed = self._pack_data(data)
            arrays = dict(packed[0])
            arrays.update(profile.to_arrays())
            meta = dict(packed[1])
            meta["profile_serial_units"] = profile.serial_units
            cache.put_arrays(key, f"graph:{self.name}", arrays, meta)
        return data, profile

    def _read_rate_key(self) -> str:
        return self.input_key

    def _cache_token(self) -> dict:
        """Build-affecting knobs beyond the input bytes (cache key
        material); override alongside :meth:`_pack_data`."""
        return {}

    #: Systems opt into layer-2 caching by overriding ``_pack_data``
    #: (structure -> ``(arrays, meta)``) and ``_unpack_data`` (the
    #: inverse, reconstructing from memmap-backed arrays).  ``None``
    #: means "not cacheable" and bypasses the cache entirely.
    _pack_data = None

    def _unpack_data(self, arrays: dict, meta: dict,
                     dataset: HomogenizedDataset) -> Any:
        raise NotImplementedError

    @abstractmethod
    def _read_input(self, dataset: HomogenizedDataset) -> EdgeList:
        """Actually read this system's native file."""

    @abstractmethod
    def _build(self, edges: EdgeList, dataset: HomogenizedDataset
               ) -> tuple[Any, WorkProfile]:
        """Build the internal structure; report the construction work."""

    @abstractmethod
    def _n_arcs(self, data: Any) -> int:
        """Stored arc count of the built structure."""

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, loaded: LoadedGraph, algorithm: str,
            root: int | None = None, **params: Any) -> KernelResult:
        """Execute one kernel and price it."""
        self.require(algorithm)
        if algorithm in ("bfs", "sssp") and root is None:
            raise SystemCapabilityError(f"{algorithm} requires a root")
        method = getattr(self, f"_run_{algorithm}")
        with self.tracer.span(f"exec:{self.name}/{algorithm}",
                              category="exec", system=self.name,
                              algorithm=algorithm, root=root,
                              n_threads=self.n_threads) as sp:
            if algorithm in ("bfs", "sssp"):
                output, profile, iterations, counters = method(
                    loaded, int(root), **params)
            else:
                output, profile, iterations, counters = method(
                    loaded, **params)
            sim = self.thread_model.simulate(
                profile,
                calibration.cost_params(self.name, algorithm,
                                        self.machine),
                self.n_threads)
            sp.set(time_s=sim.time_s, iterations=iterations)
        # Drain the frontier-library counters accumulated by this kernel
        # into the live registry only (log=False, the cache-counter rule:
        # events.jsonl stays invariant to kernel internals).
        kernel_counters = consume_counters()
        for name, value in kernel_counters.items():
            if value:
                self.tracer.counter(f"epg_kernel_{name}", value,
                                    log=False, system=self.name,
                                    algorithm=algorithm)
        self.tracer.observe("epg_kernel_seconds", sim.time_s,
                            system=self.name, algorithm=algorithm)
        edges = counters.get("edges_examined", loaded.n_arcs)
        if edges and sim.time_s > 0:
            self.tracer.observe("epg_kernel_teps", edges / sim.time_s,
                                system=self.name, algorithm=algorithm)
        return KernelResult(
            system=self.name, algorithm=algorithm, time_s=sim.time_s,
            sim=sim, profile=profile, output=output, root=root,
            iterations=iterations, counters=counters)

    def run_many(self, loaded: LoadedGraph, algorithm: str,
                 roots: tuple[int, ...] = (),
                 **params: Any) -> list[KernelResult]:
        """Execute one kernel sweep over several roots (the Graph500's
        batched-roots idiom, and the serving layer's coalescing unit).

        Rooted kernels run once per *distinct* root -- duplicate roots
        in the batch share a single execution, so N identical queries
        cost one sweep.  Rootless kernels (pagerank, wcc, ...) execute
        once regardless of batch size.  Results come back in request
        order, shared entries aliased.
        """
        self.require(algorithm)
        if algorithm not in ("bfs", "sssp"):
            shared = self.run(loaded, algorithm, **params)
            return [shared] * max(len(roots), 1)
        if not roots:
            raise SystemCapabilityError(f"{algorithm} requires roots")
        by_root: dict[int, KernelResult] = {}
        for root in roots:
            if int(root) not in by_root:
                by_root[int(root)] = self.run(loaded, algorithm,
                                              root=int(root), **params)
        return [by_root[int(root)] for root in roots]
