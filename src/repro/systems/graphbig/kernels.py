"""GraphBIG vertex-centric kernels.

All kernels operate on the property-graph structure
(:class:`~repro.systems.graphbig.system.PropertyGraph`) through
per-vertex property arrays, in the bulk-synchronous vertex-centric style
of the original benchmark suite: a task queue of active vertices, one
"process vertex" sweep per superstep.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.frontier import (claim_first_parent, gather_slots,
                                  segment_min_scatter)
from repro.graph.scratch import scratch_for
from repro.machine.threads import WorkProfile

__all__ = ["bfs_queue", "sssp_bellman_ford", "pagerank_jacobi",
           "wcc_hashmin", "cdlp_sync", "lcc_wedges",
           "PROPERTY_ACCESS_COST"]

#: Work units charged per vertex *visit* over and above its edge work:
#: GraphBIG routes every state change through the property-graph API
#: (locate record, check color, update fields), costing roughly this
#: many edge-traversal equivalents.  The term is why GraphBIG's
#: effective per-edge cost *improves* on dense graphs -- the overhead
#: amortizes over more edges per vertex -- which is the shape behind its
#: strong dota-league BFS in the paper's Fig 8.
PROPERTY_ACCESS_COST = 16.0


def bfs_queue(pg, root: int):
    """Task-queue BFS: plain top-down, no bitmap, no direction switch.

    The vertex property record (level + parent + color) is touched for
    every examined edge, which is what the calibration's high per-edge
    constant prices.  Expansion and parent claims run on the shared
    frontier library (``docs/kernels.md``).
    """
    csr = pg.out
    n = pg.n
    scratch = scratch_for(pg, n, csr.n_edges)
    level = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    level[root] = 0
    parent[root] = root
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    profile = WorkProfile()
    deg = csr.out_degrees()
    max_deg = float(deg.max()) if n else 0.0
    depth = 0
    while frontier.size:
        depth += 1
        gs = gather_slots(csr.row_ptr, frontier, scratch)
        profile.add_round(
            units=gs.total + PROPERTY_ACCESS_COST * frontier.size,
            memory_bytes=32.0 * gs.total,
            skew=min(max_deg / max(gs.total, 1.0), 1.0))
        if gs.total == 0:
            break
        nbrs = csr.col_idx[gs.slots]
        srcs = np.repeat(frontier, gs.counts)
        new_v = claim_first_parent(nbrs, srcs, visited, parent, scratch)
        level[new_v] = depth
        frontier = new_v
    return parent, level, profile, {"depth": depth}


def sssp_bellman_ford(pg, root: int):
    """Queue-driven Bellman-Ford: active vertices relax all out-edges."""
    csr = pg.out
    n = pg.n
    scratch = scratch_for(pg, n, csr.n_edges)
    dist = np.full(n, np.inf)
    dist[root] = 0.0
    active = np.array([root], dtype=np.int64)
    profile = WorkProfile()
    deg = csr.out_degrees()
    max_deg = float(deg.max()) if n else 0.0
    supersteps = 0
    relaxations = 0
    while active.size:
        supersteps += 1
        gs = gather_slots(csr.row_ptr, active, scratch)
        relaxations += gs.total
        profile.add_round(
            units=gs.total + PROPERTY_ACCESS_COST * active.size,
            memory_bytes=28.0 * gs.total,
            skew=min(max_deg / max(gs.total, 1.0), 1.0))
        if gs.total == 0:
            break
        nbrs = csr.col_idx[gs.slots]
        srcs = np.repeat(active, gs.counts)
        cand = dist[srcs] + csr.weights[gs.slots]
        better = cand < dist[nbrs]
        if not better.any():
            break
        active = segment_min_scatter(dist, nbrs[better], cand[better],
                                     scratch)
    return dist, profile, {"supersteps": supersteps,
                           "relaxations": relaxations}


def pagerank_jacobi(pg, damping: float, epsilon: float,
                    max_iterations: int):
    """Pure Jacobi sweeps with the homogenized L1 stopping criterion.

    Ranks are normalized (init ``1/n``); with the homogenized absolute
    L1 threshold this puts GraphBIG's sweep count between GAP's
    Gauss-Seidel (fewer) and GraphMat's no-change float32 criterion and
    PowerGraph's unnormalized toolkit (more) -- the Fig 4 spread.
    """
    csr = pg.out
    n = pg.n
    out_deg = csr.out_degrees().astype(np.float64)
    dangling = out_deg == 0
    src = csr.source_ids()
    dst = csr.col_idx
    rank = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    profile = WorkProfile()
    m = csr.n_edges
    iterations = max_iterations
    for it in range(1, max_iterations + 1):
        contrib = np.zeros(n)
        if m:
            np.add.at(contrib, dst, rank[src] / out_deg[src])
        new_rank = base + damping * (contrib + rank[dangling].sum() / n)
        delta = float(np.abs(new_rank - rank).sum())
        rank = new_rank
        profile.add_round(units=m + n, memory_bytes=24.0 * m + 24.0 * n,
                          skew=0.05)
        if delta < epsilon:
            iterations = it
            break
    return rank, iterations, profile


def wcc_hashmin(pg):
    """HashMin label propagation over the undirected view."""
    n = pg.n
    src = np.concatenate([pg.out.source_ids(), pg.out.col_idx])
    dst = np.concatenate([pg.out.col_idx, pg.out.source_ids()])
    labels = np.arange(n, dtype=np.int64)
    profile = WorkProfile()
    rounds = 0
    m = src.size
    while True:
        rounds += 1
        new_labels = labels.copy()
        if m:
            np.minimum.at(new_labels, dst, labels[src])
        profile.add_round(units=m + n, memory_bytes=16.0 * m, skew=0.05)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return labels, rounds, profile


def cdlp_sync(pg, iterations: int):
    """Synchronous label propagation (Graphalytics CDLP semantics)."""
    from repro.algorithms.cdlp import propagate_labels_once

    n = pg.n
    src = pg.out.source_ids()
    dst = pg.out.col_idx
    labels = np.arange(n, dtype=np.int64)
    profile = WorkProfile()
    m = src.size
    for _ in range(iterations):
        labels = propagate_labels_once(src, dst, labels, n)
        profile.add_round(units=m + n, memory_bytes=32.0 * m, skew=0.08)
    return labels, iterations, profile


def lcc_wedges(pg, batch_rows: int = 2048):
    """Per-vertex clustering via neighborhood wedge checks.

    Work is charged per wedge (ordered neighbor pair), matching the
    vertex-centric implementation that intersects adjacency lists --
    the cost blow-up on dense graphs that makes GraphBIG's dota-league
    LCC the largest number in Table I (1073.7 s).
    """
    n = pg.n
    src = pg.out.source_ids()
    dst = pg.out.col_idx
    keep = src != dst
    a_dir = sp.csr_matrix(
        (np.ones(int(keep.sum()), dtype=np.int64),
         (src[keep], dst[keep])), shape=(n, n))
    a_dir.sum_duplicates()
    a_dir.data[:] = 1
    und = a_dir + a_dir.T
    und.data[:] = 1
    und.sum_duplicates()
    und.data[:] = 1
    und = und.tocsr()
    deg = np.asarray(und.sum(axis=1)).ravel().astype(np.float64)

    tri = np.zeros(n, dtype=np.float64)
    profile = WorkProfile()
    wedge_weights = deg * (deg - 1)
    max_w = float(wedge_weights.max()) if n else 0.0
    for lo in range(0, n, batch_rows):
        hi = min(lo + batch_rows, n)
        block = (und[lo:hi] @ a_dir).multiply(und[lo:hi])
        tri[lo:hi] = np.asarray(block.sum(axis=1)).ravel()
        units = float(wedge_weights[lo:hi].sum()) + (hi - lo)
        profile.add_round(units=units, memory_bytes=8.0 * units,
                          skew=min(max_w / max(units, 1.0), 1.0))

    denom = wedge_weights
    out = np.zeros(n, dtype=np.float64)
    mask = denom > 0
    out[mask] = tri[mask] / denom[mask]
    return out, profile, {"wedges": float(denom.sum())}
