"""GraphBIG vertex-centric kernels.

All kernels operate on the property-graph structure
(:class:`~repro.systems.graphbig.system.PropertyGraph`) through
per-vertex property arrays, in the bulk-synchronous vertex-centric style
of the original benchmark suite: a task queue of active vertices, one
"process vertex" sweep per superstep.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.frontier import (claim_first_parent, gather_slots,
                                  segment_min_scatter)
from repro.graph.scratch import scratch_for
from repro.graph.simple import simple_undirected_view
from repro.machine.threads import WorkProfile

__all__ = ["bfs_queue", "sssp_bellman_ford", "pagerank_jacobi",
           "wcc_hashmin", "cdlp_sync", "lcc_wedges",
           "kcore_props", "mis_props", "cc_sv",
           "PROPERTY_ACCESS_COST"]

#: Work units charged per vertex *visit* over and above its edge work:
#: GraphBIG routes every state change through the property-graph API
#: (locate record, check color, update fields), costing roughly this
#: many edge-traversal equivalents.  The term is why GraphBIG's
#: effective per-edge cost *improves* on dense graphs -- the overhead
#: amortizes over more edges per vertex -- which is the shape behind its
#: strong dota-league BFS in the paper's Fig 8.
PROPERTY_ACCESS_COST = 16.0


def bfs_queue(pg, root: int):
    """Task-queue BFS: plain top-down, no bitmap, no direction switch.

    The vertex property record (level + parent + color) is touched for
    every examined edge, which is what the calibration's high per-edge
    constant prices.  Expansion and parent claims run on the shared
    frontier library (``docs/kernels.md``).
    """
    csr = pg.out
    n = pg.n
    scratch = scratch_for(pg, n, csr.n_edges)
    level = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    level[root] = 0
    parent[root] = root
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    profile = WorkProfile()
    deg = csr.out_degrees()
    max_deg = float(deg.max()) if n else 0.0
    depth = 0
    while frontier.size:
        depth += 1
        gs = gather_slots(csr.row_ptr, frontier, scratch)
        profile.add_round(
            units=gs.total + PROPERTY_ACCESS_COST * frontier.size,
            memory_bytes=32.0 * gs.total,
            skew=min(max_deg / max(gs.total, 1.0), 1.0))
        if gs.total == 0:
            break
        nbrs = csr.col_idx[gs.slots]
        srcs = np.repeat(frontier, gs.counts)
        new_v = claim_first_parent(nbrs, srcs, visited, parent, scratch)
        level[new_v] = depth
        frontier = new_v
    return parent, level, profile, {"depth": depth}


def sssp_bellman_ford(pg, root: int):
    """Queue-driven Bellman-Ford: active vertices relax all out-edges."""
    csr = pg.out
    n = pg.n
    scratch = scratch_for(pg, n, csr.n_edges)
    dist = np.full(n, np.inf)
    dist[root] = 0.0
    active = np.array([root], dtype=np.int64)
    profile = WorkProfile()
    deg = csr.out_degrees()
    max_deg = float(deg.max()) if n else 0.0
    supersteps = 0
    relaxations = 0
    while active.size:
        supersteps += 1
        gs = gather_slots(csr.row_ptr, active, scratch)
        relaxations += gs.total
        profile.add_round(
            units=gs.total + PROPERTY_ACCESS_COST * active.size,
            memory_bytes=28.0 * gs.total,
            skew=min(max_deg / max(gs.total, 1.0), 1.0))
        if gs.total == 0:
            break
        nbrs = csr.col_idx[gs.slots]
        srcs = np.repeat(active, gs.counts)
        cand = dist[srcs] + csr.weights[gs.slots]
        better = cand < dist[nbrs]
        if not better.any():
            break
        active = segment_min_scatter(dist, nbrs[better], cand[better],
                                     scratch)
    return dist, profile, {"supersteps": supersteps,
                           "relaxations": relaxations}


def pagerank_jacobi(pg, damping: float, epsilon: float,
                    max_iterations: int):
    """Pure Jacobi sweeps with the homogenized L1 stopping criterion.

    Ranks are normalized (init ``1/n``); with the homogenized absolute
    L1 threshold this puts GraphBIG's sweep count between GAP's
    Gauss-Seidel (fewer) and GraphMat's no-change float32 criterion and
    PowerGraph's unnormalized toolkit (more) -- the Fig 4 spread.
    """
    csr = pg.out
    n = pg.n
    out_deg = csr.out_degrees().astype(np.float64)
    dangling = out_deg == 0
    src = csr.source_ids()
    dst = csr.col_idx
    rank = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    profile = WorkProfile()
    m = csr.n_edges
    iterations = max_iterations
    for it in range(1, max_iterations + 1):
        contrib = np.zeros(n)
        if m:
            np.add.at(contrib, dst, rank[src] / out_deg[src])
        new_rank = base + damping * (contrib + rank[dangling].sum() / n)
        delta = float(np.abs(new_rank - rank).sum())
        rank = new_rank
        profile.add_round(units=m + n, memory_bytes=24.0 * m + 24.0 * n,
                          skew=0.05)
        if delta < epsilon:
            iterations = it
            break
    return rank, iterations, profile


def wcc_hashmin(pg):
    """HashMin label propagation over the undirected view."""
    n = pg.n
    src = np.concatenate([pg.out.source_ids(), pg.out.col_idx])
    dst = np.concatenate([pg.out.col_idx, pg.out.source_ids()])
    labels = np.arange(n, dtype=np.int64)
    profile = WorkProfile()
    rounds = 0
    m = src.size
    while True:
        rounds += 1
        new_labels = labels.copy()
        if m:
            np.minimum.at(new_labels, dst, labels[src])
        profile.add_round(units=m + n, memory_bytes=16.0 * m, skew=0.05)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return labels, rounds, profile


def cdlp_sync(pg, iterations: int):
    """Synchronous label propagation (Graphalytics CDLP semantics)."""
    from repro.algorithms.cdlp import propagate_labels_once

    n = pg.n
    src = pg.out.source_ids()
    dst = pg.out.col_idx
    labels = np.arange(n, dtype=np.int64)
    profile = WorkProfile()
    m = src.size
    for _ in range(iterations):
        labels = propagate_labels_once(src, dst, labels, n)
        profile.add_round(units=m + n, memory_bytes=32.0 * m, skew=0.08)
    return labels, iterations, profile


def kcore_props(pg):
    """Level-synchronous k-core peel through the property records.

    GraphBIG keeps the residual degree as a vertex property and sweeps
    a task queue of sub-``k`` vertices per superstep; every peel and
    every neighbor decrement goes through the property API, so the
    per-visit overhead is charged on top of the edge work.  Core
    numbers are unique, so the output matches the other systems bit
    for bit.
    """
    n = pg.n
    view = simple_undirected_view(pg.out.source_ids(), pg.out.col_idx, n)
    profile = WorkProfile()
    profile.add_round(units=pg.out.n_edges + PROPERTY_ACCESS_COST * n,
                      memory_bytes=16.0 * pg.out.n_edges, skew=0.05)
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core, 0, profile
    scratch = scratch_for(pg, n, max(pg.out.n_edges, view.nnz))
    deg = view.degrees.copy()
    alive = np.ones(n, dtype=bool)
    remaining = n
    level = 0
    supersteps = 0
    max_deg = float(deg.max())
    while remaining:
        alive_idx = np.flatnonzero(alive)
        level = max(level, int(deg[alive_idx].min()))
        frontier = alive_idx[deg[alive_idx] <= level]
        while frontier.size:
            supersteps += 1
            core[frontier] = level
            alive[frontier] = False
            remaining -= int(frontier.size)
            gs = gather_slots(view.indptr, frontier, scratch)
            profile.add_round(
                units=gs.total + PROPERTY_ACCESS_COST * frontier.size,
                memory_bytes=32.0 * gs.total,
                skew=min(max_deg / max(gs.total, 1.0), 1.0))
            nbrs = view.indices[gs.slots]
            nbrs = nbrs[alive[nbrs]]
            if nbrs.size == 0:
                break
            ids, cnt = np.unique(nbrs, return_counts=True)
            new_deg = np.maximum(deg[ids] - cnt, level)
            deg[ids] = new_deg
            frontier = ids[new_deg <= level]
    return core, supersteps, profile


def mis_props(pg, priorities: np.ndarray):
    """Pull-based Luby rounds over the vertex property array.

    Each superstep is a full vertex-centric sweep: every undecided
    vertex pulls the minimum priority of its undecided neighbors, wins
    if its own beats it, and winners' neighbors are retired through the
    property API.  Shared seeded ``priorities`` make the rounds
    equivalent to greedy-by-priority, hence identical across systems.
    """
    n = pg.n
    view = simple_undirected_view(pg.out.source_ids(), pg.out.col_idx, n)
    profile = WorkProfile()
    profile.add_round(units=pg.out.n_edges + PROPERTY_ACCESS_COST * n,
                      memory_bytes=16.0 * pg.out.n_edges, skew=0.05)
    in_set = np.zeros(n, dtype=bool)
    if n == 0:
        return in_set, 0, profile
    scratch = scratch_for(pg, n, max(pg.out.n_edges, view.nnz))
    pr = np.asarray(priorities, dtype=np.int64)
    decided = np.zeros(n, dtype=bool)
    sentinel = np.int64(n)
    starts = view.indptr[:-1]
    nonempty = view.degrees > 0
    supersteps = 0
    while not decided.all():
        supersteps += 1
        undecided = int(n - decided.sum())
        vals = np.where(decided[view.indices], sentinel,
                        pr[view.indices])
        best = np.full(n, sentinel, dtype=np.int64)
        if nonempty.any():
            best[nonempty] = np.minimum.reduceat(vals, starts[nonempty])
        winners = ~decided & (pr < best)
        in_set[winners] = True
        decided[winners] = True
        ws = gather_slots(view.indptr, np.flatnonzero(winners), scratch)
        decided[view.indices[ws.slots]] = True
        profile.add_round(
            units=view.nnz + ws.total + PROPERTY_ACCESS_COST * undecided,
            memory_bytes=24.0 * (view.nnz + ws.total), skew=0.1)
    return in_set, supersteps, profile


def cc_sv(pg):
    """Shiloach-Vishkin components through the property records.

    Hook + compress like GAP's ``cc``, but each label read/write is a
    property access; converges to minimum-member-id labels (the
    Graphalytics convention), exactly matching :func:`wcc_hashmin` on
    undirected inputs and every other system's ``cc``.
    """
    n = pg.n
    src = pg.out.source_ids()
    dst = pg.out.col_idx
    m = src.size
    comp = np.arange(n, dtype=np.int64)
    profile = WorkProfile()
    rounds = 0
    while True:
        rounds += 1
        low = np.minimum(comp[src], comp[dst])
        new_comp = comp.copy()
        if m:
            np.minimum.at(new_comp, src, low)
            np.minimum.at(new_comp, dst, low)
        new_comp = new_comp[new_comp]
        profile.add_round(units=2.0 * m + PROPERTY_ACCESS_COST * n,
                          memory_bytes=24.0 * m, skew=0.05)
        if np.array_equal(new_comp, comp):
            break
        comp = new_comp
    return comp, rounds, profile


def lcc_wedges(pg, batch_rows: int | None = None):
    """Per-vertex clustering via neighborhood wedge checks.

    Work is charged per wedge (ordered neighbor pair), matching the
    vertex-centric implementation that intersects adjacency lists --
    the cost blow-up on dense graphs that makes GraphBIG's dota-league
    LCC the largest number in Table I (1073.7 s).  ``batch_rows``
    (default: min(2048, n)) must tile the matrix or ``ConfigError``.
    """
    from repro.graph.frontier import resolve_batch_rows

    n = pg.n
    batch_rows = resolve_batch_rows(batch_rows, n)
    src = pg.out.source_ids()
    dst = pg.out.col_idx
    keep = src != dst
    a_dir = sp.csr_matrix(
        (np.ones(int(keep.sum()), dtype=np.int64),
         (src[keep], dst[keep])), shape=(n, n))
    a_dir.sum_duplicates()
    a_dir.data[:] = 1
    und = a_dir + a_dir.T
    und.data[:] = 1
    und.sum_duplicates()
    und.data[:] = 1
    und = und.tocsr()
    deg = np.asarray(und.sum(axis=1)).ravel().astype(np.float64)

    tri = np.zeros(n, dtype=np.float64)
    profile = WorkProfile()
    wedge_weights = deg * (deg - 1)
    max_w = float(wedge_weights.max()) if n else 0.0
    for lo in range(0, n, batch_rows):
        hi = min(lo + batch_rows, n)
        block = (und[lo:hi] @ a_dir).multiply(und[lo:hi])
        tri[lo:hi] = np.asarray(block.sum(axis=1)).ravel()
        units = float(wedge_weights[lo:hi].sum()) + (hi - lo)
        profile.add_round(units=units, memory_bytes=8.0 * units,
                          skew=min(max_w / max(units, 1.0), 1.0))

    denom = wedge_weights
    out = np.zeros(n, dtype=np.float64)
    mask = denom > 0
    out[mask] = tri[mask] / denom[mask]
    return out, profile, {"wedges": float(denom.sum())}
