"""GraphBIG system wrapper (property graph, fused read+build)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import formats
from repro.datasets.homogenize import HomogenizedDataset
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.machine.threads import WorkProfile
from repro.systems.base import GraphSystem
from repro.systems.graphbig import kernels

__all__ = ["GraphBigSystem", "PropertyGraph"]


@dataclass
class PropertyGraph:
    """GraphBIG's structure: CSR adjacency plus per-vertex property
    records (the System G heritage the suite keeps)."""

    out: CSRGraph
    n: int
    #: Property record per vertex: (id, level, color, rank, distance) --
    #: allocated up-front like the C++ struct-of-arrays.
    properties: dict[str, np.ndarray]

    @property
    def n_arcs(self) -> int:
        return self.out.n_edges

    def nbytes(self) -> int:
        """CSR plus the per-vertex property records."""
        props = sum(a.nbytes for a in self.properties.values())
        return self.out.nbytes() + props + 8 * self.n


class GraphBigSystem(GraphSystem):
    """GraphBIG (Sec. III-C item 3)."""

    name = "graphbig"
    provides = frozenset({"bfs", "sssp", "pagerank", "wcc", "cdlp", "lcc",
                          "kcore", "mis", "cc"})
    #: "GraphBIG reads in the file and generates the data structure
    #: simultaneously" -- construction is not separable (Fig 2 caption).
    separable_construction = False
    input_key = "graphbig"

    def _read_rate_key(self) -> str:
        return "csv"

    # -- loading -------------------------------------------------------
    def _read_input(self, dataset: HomogenizedDataset) -> EdgeList:
        return formats.read_graphbig_csv(
            dataset.path("graphbig"), directed=dataset.directed,
            name=dataset.name)

    def _build(self, edges: EdgeList, dataset: HomogenizedDataset):
        profile = WorkProfile()
        el = edges if dataset.directed else edges.symmetrized()
        m = el.n_edges
        # Vertex table allocation + edge insertion through the property
        # API; single fused pass (hence not separately measurable).
        profile.add_round(units=m + el.n_vertices,
                          memory_bytes=48.0 * m, skew=0.05)
        csr = CSRGraph.from_arrays(el.src, el.dst, el.n_vertices,
                                   weights=el.weights)
        n = el.n_vertices
        props = {
            "level": np.full(n, -1, dtype=np.int64),
            "color": np.zeros(n, dtype=np.int64),
            "rank": np.zeros(n, dtype=np.float64),
            "distance": np.full(n, np.inf),
        }
        return PropertyGraph(out=csr, n=n, properties=props), profile

    def _n_arcs(self, data: PropertyGraph) -> int:
        return data.n_arcs

    # -- artifact cache ------------------------------------------------
    def _pack_data(self, data: PropertyGraph):
        # Only the CSR is cached: the property records are kernel
        # *outputs* (kernels replace them per run), so they are
        # reallocated fresh on restore instead of shared read-only.
        return data.out.to_arrays_map("out_"), {"n": data.n}

    def _unpack_data(self, arrays, meta, dataset) -> PropertyGraph:
        n = int(meta["n"])
        props = {
            "level": np.full(n, -1, dtype=np.int64),
            "color": np.zeros(n, dtype=np.int64),
            "rank": np.zeros(n, dtype=np.float64),
            "distance": np.full(n, np.inf),
        }
        return PropertyGraph(out=CSRGraph.from_arrays_map(arrays, "out_"),
                             n=n, properties=props)

    # -- kernels -------------------------------------------------------
    def _run_bfs(self, loaded, root: int):
        parent, level, profile, stats = kernels.bfs_queue(loaded.data, root)
        loaded.data.properties["level"] = level
        return ({"parent": parent, "level": level}, profile, None,
                {"depth": float(stats["depth"])})

    def _run_sssp(self, loaded, root: int):
        dist, profile, stats = kernels.sssp_bellman_ford(loaded.data, root)
        loaded.data.properties["distance"] = dist
        return ({"dist": dist}, profile, None,
                {"supersteps": float(stats["supersteps"]),
                 "relaxations": float(stats["relaxations"])})

    def _run_pagerank(self, loaded, epsilon: float = 6e-8,
                      damping: float = 0.85, max_iterations: int = 1000):
        rank, iterations, profile = kernels.pagerank_jacobi(
            loaded.data, damping=damping, epsilon=epsilon,
            max_iterations=max_iterations)
        loaded.data.properties["rank"] = rank
        return ({"rank": rank}, profile, iterations, {})

    def _run_wcc(self, loaded):
        labels, rounds, profile = kernels.wcc_hashmin(loaded.data)
        return ({"labels": labels}, profile, rounds, {})

    def _run_cdlp(self, loaded, iterations: int = 10):
        labels, iters, profile = kernels.cdlp_sync(loaded.data, iterations)
        return ({"labels": labels}, profile, iters, {})

    def _run_lcc(self, loaded):
        lcc, profile, stats = kernels.lcc_wedges(loaded.data)
        return ({"lcc": lcc}, profile, None,
                {"wedges": stats["wedges"]})

    def _run_kcore(self, loaded):
        core, supersteps, profile = kernels.kcore_props(loaded.data)
        return ({"core": core}, profile, supersteps,
                {"max_core": float(core.max()) if core.size else 0.0})

    def _run_mis(self, loaded, seed: int | None = None):
        from repro.algorithms.mis import DEFAULT_MIS_SEED, mis_priorities

        pr = mis_priorities(loaded.data.n,
                            DEFAULT_MIS_SEED if seed is None else seed)
        in_set, supersteps, profile = kernels.mis_props(loaded.data, pr)
        return ({"in_set": in_set.astype(np.int64)}, profile, supersteps,
                {"set_size": float(in_set.sum())})

    def _run_cc(self, loaded):
        labels, rounds, profile = kernels.cc_sv(loaded.data)
        return ({"labels": labels}, profile, rounds, {})
