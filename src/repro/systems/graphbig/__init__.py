"""GraphBIG reimplementation.

"GraphBIG benchmark suite.  We consider only the shared memory
solutions ... GraphBIG uses a CSR representation for graphs and OpenMP
for parallelism." (paper Sec. III-C)

Behavioural fidelity points:

* vertex-centric property-graph framework (IBM System G heritage):
  every vertex carries a property record, and kernels go through the
  property API -- the per-edge overhead that makes GraphBIG ~85x slower
  per BFS edge than the Graph500 while still being the fastest BFS on
  dota-league (plain top-down never wastes bottom-up probes, Fig 8);
* reads its CSV dataset directory and builds the graph *simultaneously*
  -- construction time is not separable (Figs 2-3 omit it);
* plain queue-based top-down BFS, Bellman-Ford SSSP, Jacobi PageRank
  with the homogenized L1 stop, HashMin WCC, synchronous CDLP and
  wedge-checking LCC (the six Graphalytics kernels of Tables I-II).
"""

from repro.systems.graphbig.system import GraphBigSystem

__all__ = ["GraphBigSystem"]
