"""PowerGraph toolkit vertex programs.

The shipped toolkits cover SSSP, PageRank, connected components, label
propagation, and (undirected) triangle counting / clustering -- but
**not BFS** (Sec. III-C).  The distance-propagation program used by the
Graphalytics PowerGraph driver to emulate BFS lives here too, under its
own name, so the capability hole in PowerGraph itself stays visible.
"""

from __future__ import annotations

import numpy as np

from repro.machine.threads import WorkProfile
from repro.systems.powergraph.gas import GasEngine, VertexProgram

__all__ = ["sssp_program", "pagerank_gas", "wcc_program", "cdlp_gas",
           "lcc_gas", "bfs_hop_program", "kcore_gas", "mis_gas"]


# ----------------------------------------------------------------------
# SSSP (toolkit: graph_analytics/sssp.cpp)
# ----------------------------------------------------------------------
def sssp_program() -> VertexProgram:
    def gather(state, srcs, dsts, weights):
        return state.data[srcs] + weights

    def apply(state, vertices, gathered):
        return np.minimum(state.data[vertices], gathered)

    return VertexProgram(name="sssp", gather=gather, reduce="min",
                         apply=apply, tolerance=0.0, identity=np.inf)


def run_sssp(engine: GasEngine, root: int
             ) -> tuple[np.ndarray, int, WorkProfile, dict]:
    n = engine.inn.n_vertices
    dist = np.full(n, np.inf)
    dist[root] = 0.0
    active = np.zeros(n, dtype=bool)
    active[root] = True
    return engine.run(sssp_program(), dist, active)


# ----------------------------------------------------------------------
# BFS via hop distances (the *Graphalytics driver's* program, not a
# PowerGraph toolkit member).
# ----------------------------------------------------------------------
def bfs_hop_program() -> VertexProgram:
    def gather(state, srcs, dsts, weights):
        return state.data[srcs] + 1.0

    def apply(state, vertices, gathered):
        return np.minimum(state.data[vertices], gathered)

    return VertexProgram(name="bfs-hops", gather=gather, reduce="min",
                         apply=apply, tolerance=0.0, identity=np.inf)


def run_bfs_hops(engine: GasEngine, root: int
                 ) -> tuple[np.ndarray, int, WorkProfile, dict]:
    n = engine.inn.n_vertices
    hops = np.full(n, np.inf)
    hops[root] = 0.0
    active = np.zeros(n, dtype=bool)
    active[root] = True
    return engine.run(bfs_hop_program(), hops, active)


# ----------------------------------------------------------------------
# PageRank (toolkit: graph_analytics/pagerank.cpp), homogenized stop.
# ----------------------------------------------------------------------
def pagerank_gas(engine: GasEngine, damping: float = 0.85,
                 epsilon: float = 6e-8, max_iterations: int = 1000
                 ) -> tuple[np.ndarray, int, WorkProfile, dict]:
    """Synchronous PageRank sweeps on the GAS engine.

    All vertices stay signaled each sweep (PowerGraph's PR gathers every
    round); the homogenized global stop |p_i - p_(i-1)|_1 < epsilon is
    evaluated by the harness hook the paper added to each system.

    The homogenization hook rescales the toolkit's ranks to a
    probability vector so the shared threshold is comparable; the extra
    quiescence detection superstep of the synchronous engine is included
    in the iteration count.
    """
    inn = engine.inn
    n = inn.n_vertices
    out_deg = engine.out.out_degrees().astype(np.float64)
    dangling = out_deg == 0
    inv_out = np.zeros(n)
    inv_out[~dangling] = 1.0 / out_deg[~dangling]
    rank = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    profile = WorkProfile()
    nnz = inn.n_edges
    rep = max(engine.cut.replication_factor, 1.0)
    src = inn.col_idx
    rows = inn.source_ids()

    iterations = 0
    for it in range(1, max_iterations + 1):
        iterations = it
        contrib = np.zeros(n)
        if nnz:
            np.add.at(contrib, rows, rank[src] * inv_out[src])
        new_rank = base + damping * (contrib + rank[dangling].sum() / n)
        delta = float(np.abs(new_rank - rank).sum())
        rank = new_rank
        profile.add_round(units=nnz + n + rep * n,
                          memory_bytes=24.0 * nnz + 16.0 * rep * n,
                          skew=0.05)
        if delta < epsilon:
            break
    # Quiescence detection superstep (all vertices gather once more and
    # decline to signal).
    iterations += 1
    profile.add_round(units=n + rep * n, memory_bytes=16.0 * rep * n,
                      skew=0.05)
    stats = {"replication_factor": engine.cut.replication_factor}
    return rank, iterations, profile, stats


# ----------------------------------------------------------------------
# Connected components (toolkit: graph_analytics/connected_component.cpp)
# ----------------------------------------------------------------------
def wcc_program() -> VertexProgram:
    def gather(state, srcs, dsts, weights):
        return state.data[srcs]

    def apply(state, vertices, gathered):
        return np.minimum(state.data[vertices], gathered)

    return VertexProgram(name="wcc", gather=gather, reduce="min",
                         apply=apply, tolerance=0.0, identity=np.inf)


def run_wcc(engine_sym: GasEngine
            ) -> tuple[np.ndarray, int, WorkProfile, dict]:
    """Label min-propagation over the symmetrized engine."""
    n = engine_sym.inn.n_vertices
    labels = np.arange(n, dtype=np.float64)
    active = np.ones(n, dtype=bool)
    data, steps, profile, stats = engine_sym.run(wcc_program(), labels,
                                                 active)
    return data.astype(np.int64), steps, profile, stats


# ----------------------------------------------------------------------
# CDLP -- the mode reduction does not fit gather-sum/min, so the toolkit
# implements it with a gather of full label multisets; we account the
# same work through the engine-style profile while computing labels with
# the shared synchronous propagation rule.
# ----------------------------------------------------------------------
def cdlp_gas(engine: GasEngine, iterations: int = 10
             ) -> tuple[np.ndarray, int, WorkProfile, dict]:
    from repro.algorithms.cdlp import propagate_labels_once

    inn = engine.inn
    n = inn.n_vertices
    src = inn.col_idx
    dst = inn.source_ids()
    labels = np.arange(n, dtype=np.int64)
    profile = WorkProfile()
    nnz = inn.n_edges
    rep = max(engine.cut.replication_factor, 1.0)
    for _ in range(iterations):
        labels = propagate_labels_once(src, dst, labels, n)
        profile.add_round(units=nnz + n + rep * n,
                          memory_bytes=40.0 * nnz, skew=0.08)
    return labels, iterations, profile, {
        "replication_factor": engine.cut.replication_factor}


# ----------------------------------------------------------------------
# LCC (toolkit: graph_analytics/simple_undirected_triangle_count.cpp)
# ----------------------------------------------------------------------
def lcc_gas(engine: GasEngine, batch_rows: int | None = None
            ) -> tuple[np.ndarray, WorkProfile, dict]:
    import scipy.sparse as sp

    from repro.graph.frontier import resolve_batch_rows

    inn = engine.inn
    n = inn.n_vertices
    batch_rows = resolve_batch_rows(batch_rows, n)
    dst = inn.source_ids()
    src = inn.col_idx
    keep = src != dst
    a_dir = sp.csr_matrix(
        (np.ones(int(keep.sum()), dtype=np.int64),
         (src[keep], dst[keep])), shape=(n, n))
    a_dir.sum_duplicates()
    a_dir.data[:] = 1
    und = a_dir + a_dir.T
    und.data[:] = 1
    und.sum_duplicates()
    und.data[:] = 1
    und = und.tocsr()
    deg = np.asarray(und.sum(axis=1)).ravel().astype(np.float64)
    wedge_weights = deg * (deg - 1)

    tri = np.zeros(n, dtype=np.float64)
    profile = WorkProfile()
    rep = max(engine.cut.replication_factor, 1.0)
    for lo in range(0, n, batch_rows):
        hi = min(lo + batch_rows, n)
        block = (und[lo:hi] @ a_dir).multiply(und[lo:hi])
        tri[lo:hi] = np.asarray(block.sum(axis=1)).ravel()
        units = float(wedge_weights[lo:hi].sum()) + rep * (hi - lo)
        profile.add_round(units=units, memory_bytes=8.0 * units, skew=0.3)

    out = np.zeros(n, dtype=np.float64)
    mask = wedge_weights > 0
    out[mask] = tri[mask] / wedge_weights[mask]
    return out, profile, {"wedges": float(wedge_weights.sum())}


# ----------------------------------------------------------------------
# k-core (toolkit: graph_analytics/kcore.cpp) -- the toolkit peels by
# signaling sub-k vertices; each apply runs on every mirror, so the
# per-round vertex term is replication-weighted like LCC's.
# ----------------------------------------------------------------------
def kcore_gas(engine: GasEngine
              ) -> tuple[np.ndarray, int, WorkProfile, dict]:
    from repro.graph.simple import simple_undirected_view

    inn = engine.inn
    n = inn.n_vertices
    view = simple_undirected_view(inn.col_idx, inn.source_ids(), n)
    rep = max(engine.cut.replication_factor, 1.0)
    profile = WorkProfile()
    profile.add_round(units=inn.n_edges + rep * n,
                      memory_bytes=16.0 * inn.n_edges, skew=0.05)
    core = np.zeros(n, dtype=np.int64)
    stats = {"replication_factor": engine.cut.replication_factor}
    if n == 0:
        return core, 0, profile, stats
    deg = view.degrees.copy()
    alive = np.ones(n, dtype=bool)
    remaining = n
    level = 0
    supersteps = 0
    while remaining:
        alive_idx = np.flatnonzero(alive)
        level = max(level, int(deg[alive_idx].min()))
        frontier = alive_idx[deg[alive_idx] <= level]
        while frontier.size:
            supersteps += 1
            core[frontier] = level
            alive[frontier] = False
            remaining -= int(frontier.size)
            nbrs = view.neighbors_of(frontier)
            touched = nbrs.size
            nbrs = nbrs[alive[nbrs]]
            profile.add_round(units=touched + rep * frontier.size,
                              memory_bytes=24.0 * touched, skew=0.1)
            if nbrs.size == 0:
                break
            ids, cnt = np.unique(nbrs, return_counts=True)
            new_deg = np.maximum(deg[ids] - cnt, level)
            deg[ids] = new_deg
            frontier = ids[new_deg <= level]
    return core, supersteps, profile, stats


# ----------------------------------------------------------------------
# MIS (toolkit: graph_analytics/simple_coloring-style rounds) -- gather
# is a min over mirror-replicated neighbor priorities, apply decides
# winners, scatter retires their neighbors.
# ----------------------------------------------------------------------
def mis_gas(engine: GasEngine, priorities: np.ndarray
            ) -> tuple[np.ndarray, int, WorkProfile, dict]:
    from repro.graph.simple import simple_undirected_view

    inn = engine.inn
    n = inn.n_vertices
    view = simple_undirected_view(inn.col_idx, inn.source_ids(), n)
    rep = max(engine.cut.replication_factor, 1.0)
    profile = WorkProfile()
    profile.add_round(units=inn.n_edges + rep * n,
                      memory_bytes=16.0 * inn.n_edges, skew=0.05)
    in_set = np.zeros(n, dtype=bool)
    stats = {"replication_factor": engine.cut.replication_factor}
    if n == 0:
        return in_set, 0, profile, stats
    pr = np.asarray(priorities, dtype=np.int64)
    decided = np.zeros(n, dtype=bool)
    sentinel = np.int64(n)
    starts = view.indptr[:-1]
    nonempty = view.degrees > 0
    supersteps = 0
    while not decided.all():
        supersteps += 1
        undecided = int(n - decided.sum())
        vals = np.where(decided[view.indices], sentinel,
                        pr[view.indices])
        best = np.full(n, sentinel, dtype=np.int64)
        if nonempty.any():
            best[nonempty] = np.minimum.reduceat(vals, starts[nonempty])
        winners = ~decided & (pr < best)
        in_set[winners] = True
        decided[winners] = True
        losers = view.neighbors_of(np.flatnonzero(winners))
        decided[losers] = True
        profile.add_round(
            units=view.nnz + losers.size + rep * undecided,
            memory_bytes=24.0 * (view.nnz + losers.size), skew=0.1)
    return in_set, supersteps, profile, stats
