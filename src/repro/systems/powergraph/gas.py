"""The synchronous gather-apply-scatter engine.

A :class:`VertexProgram` declares its three phases; the engine runs
supersteps over the active vertex set until quiescence (no signals) or
an iteration cap.  Work accounting per superstep:

* gather: one unit per in-edge of an active vertex;
* apply: one unit per active vertex;
* scatter: one unit per out-edge of a changed vertex;
* mirror sync: ``replication_factor`` units per active vertex (the
  master/mirror exchange a distributed PowerGraph would send over the
  network and the shared-memory build still performs through its
  communication abstraction).

The fiber scheduler's per-superstep latency is folded into the barrier
cost of the thread model (PowerGraph's calibrated ``barrier_s`` is the
largest of the five systems).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.frontier import dedup_ids, gather_slots
from repro.graph.scratch import scratch_for
from repro.machine.threads import WorkProfile
from repro.systems.powergraph.partition import VertexCut

__all__ = ["VertexProgram", "GasEngine", "AsyncGasEngine", "GasState"]


@dataclass
class GasState:
    """Mutable engine state handed to the program's phases."""

    data: np.ndarray              # per-vertex value(s)
    active: np.ndarray            # bool mask of signaled vertices
    superstep: int = 0


@dataclass
class VertexProgram:
    """One GAS algorithm.

    gather:
        ``gather(state, srcs, dsts, weights) -> contributions`` --
        per-in-edge values for the active destination vertices.
    reduce:
        ``"sum"`` or ``"min"`` -- how contributions combine per vertex.
    apply:
        ``apply(state, vertex_ids, gathered) -> new_values`` for the
        gathered vertices (vertices with no in-edges get the identity).
    scatter_changed_only:
        signal out-neighbors of changed vertices (True for everything
        here -- PowerGraph's delta-style programs).
    tolerance:
        per-vertex change threshold below which a vertex does not
        re-signal.
    """

    name: str
    gather: Callable
    reduce: str
    apply: Callable
    tolerance: float = 0.0
    identity: float = 0.0


class GasEngine:
    """Synchronous engine over a vertex-cut partitioned graph."""

    def __init__(self, inn: CSRGraph, out: CSRGraph, cut: VertexCut):
        self.inn = inn
        self.out = out
        self.cut = cut

    def _scratch(self):
        """Kernel scratch keyed on the engine (which owns both CSRs)."""
        return scratch_for(self, self.inn.n_vertices,
                           max(self.inn.n_edges, self.out.n_edges))

    # ------------------------------------------------------------------
    def _gather_phase(self, program: VertexProgram, state: GasState,
                      targets: np.ndarray) -> tuple[np.ndarray, int]:
        """Reduce in-edge contributions for ``targets``.

        The slot expansion is the shared
        :func:`~repro.graph.frontier.gather_slots`; the per-vertex
        reduction keeps ``np.add.at`` for sums (re-associating float
        additions would change low-order bits) and ``np.minimum.at``
        for mins.
        """
        inn = self.inn
        gathered = np.full(targets.size, program.identity, dtype=np.float64)
        gs = gather_slots(inn.row_ptr, targets, self._scratch())
        if gs.total == 0:
            return gathered, 0
        srcs = inn.col_idx[gs.slots]
        dst_rep = np.repeat(targets, gs.counts)
        w = inn.weights[gs.slots] if inn.weights is not None else None
        contributions = program.gather(state, srcs, dst_rep, w)
        idx = np.repeat(np.arange(targets.size), gs.counts)
        if program.reduce == "sum":
            np.add.at(gathered, idx, contributions)
        elif program.reduce == "min":
            np.minimum.at(gathered, idx, contributions)
        else:  # pragma: no cover - guarded by VertexProgram authors
            raise ValueError(f"unknown reduce {program.reduce!r}")
        return gathered, gs.total

    def run(self, program: VertexProgram, initial: np.ndarray,
            initially_active: np.ndarray, max_supersteps: int = 10_000,
            ) -> tuple[np.ndarray, int, WorkProfile, dict]:
        """Run to quiescence; return (data, supersteps, profile, stats)."""
        n = self.inn.n_vertices
        state = GasState(data=initial.copy(),
                         active=initially_active.copy())
        profile = WorkProfile()
        rep = max(self.cut.replication_factor, 1.0)
        out_deg = self.out.out_degrees()
        max_deg = float(out_deg.max()) if n else 0.0
        gathered_edges = 0
        scattered_edges = 0

        while state.active.any() and state.superstep < max_supersteps:
            state.superstep += 1
            # Gather targets: vertices whose in-neighborhood contains an
            # active vertex (PowerGraph gathers at vertices signaled by
            # scatter; synchronously that is the out-neighborhood of the
            # active set, plus the active set itself on the first step).
            if state.superstep == 1:
                targets = np.flatnonzero(state.active)
            else:
                targets = self._signaled(state.active)
            if targets.size == 0:
                break
            gathered, g_edges = self._gather_phase(program, state, targets)
            gathered_edges += g_edges

            old_vals = state.data[targets].copy()
            new_vals = program.apply(state, targets, gathered)
            changed_mask = np.abs(new_vals - old_vals) > program.tolerance
            state.data[targets] = new_vals
            if state.superstep == 1:
                # Initially signaled vertices always scatter once, even
                # when apply leaves their value unchanged (the root of an
                # SSSP must announce its zero distance).
                changed = targets
            else:
                changed = targets[changed_mask]

            s_edges = int(out_deg[changed].sum())
            scattered_edges += s_edges
            mirror_units = rep * targets.size
            units = g_edges + s_edges + targets.size + mirror_units
            profile.add_round(
                units=units,
                memory_bytes=24.0 * (g_edges + s_edges) + 16.0 * mirror_units,
                skew=min(max_deg / max(units, 1.0), 1.0))

            nxt = np.zeros(n, dtype=bool)
            nxt[changed] = True
            state.active = nxt

        stats = {
            "supersteps": state.superstep,
            "gathered_edges": gathered_edges,
            "scattered_edges": scattered_edges,
            "replication_factor": self.cut.replication_factor,
        }
        return state.data, state.superstep, profile, stats

    def _signaled(self, active: np.ndarray) -> np.ndarray:
        """Out-neighborhood of the active set (who got signals)."""
        frontier = np.flatnonzero(active)
        out = self.out
        scratch = self._scratch()
        gs = gather_slots(out.row_ptr, frontier, scratch)
        if gs.total == 0:
            return np.empty(0, dtype=np.int64)
        return dedup_ids(out.col_idx[gs.slots], out.n_vertices, scratch)


class AsyncGasEngine(GasEngine):
    """PowerGraph's asynchronous engine (``--engine async``).

    Instead of bulk-synchronous supersteps, fibers drain a prioritized
    vertex queue: the vertex with the smallest tentative value runs its
    gather/apply/scatter immediately against the freshest state.  For
    monotone min-programs (SSSP, WCC) this is label-correcting with a
    best-first order -- fewer total updates than the synchronous
    engine's frontier-wide sweeps, bought with fine-grained locking
    that the cost model charges through a higher per-unit price (the
    lock/queue overhead is folded into the mirror-sync term, scaled by
    :data:`ASYNC_OVERHEAD`).

    Only ``reduce="min"`` programs are supported (PageRank runs
    synchronously in the paper's homogenized setup anyway).
    """

    #: Extra work-units charged per processed vertex for queue + lock
    #: traffic relative to the synchronous engine's barrier amortization.
    ASYNC_OVERHEAD = 4.0

    def run(self, program: VertexProgram, initial: np.ndarray,
            initially_active: np.ndarray, max_supersteps: int = 10_000,
            ) -> tuple[np.ndarray, int, WorkProfile, dict]:
        if program.reduce != "min":
            raise ValueError(
                "the async engine supports min-programs only")
        import heapq

        n = self.inn.n_vertices
        data = initial.copy()
        out = self.out
        rep = max(self.cut.replication_factor, 1.0)
        profile = WorkProfile()
        gathered_edges = 0
        scattered_edges = 0
        processed = 0

        heap: list[tuple[float, int]] = []
        for v in np.flatnonzero(initially_active):
            heapq.heappush(heap, (float(data[v]), int(v)))

        # Best-first label-correcting loop over out-edges: pop the
        # smallest tentative value, relax its out-neighbors directly
        # (gather degenerates to the popped value for min-programs).
        batch_units = 0.0
        batch_edges = 0
        while heap:
            val, v = heapq.heappop(heap)
            if val > data[v]:
                continue  # stale queue entry
            processed += 1
            lo, hi = out.row_ptr[v], out.row_ptr[v + 1]
            nbrs = out.col_idx[lo:hi]
            scattered_edges += int(hi - lo)
            if program.name == "sssp":
                cand = val + out.weights[lo:hi]
            else:  # min-label propagation (wcc, bfs-hops uses +1)
                step = 1.0 if program.name == "bfs-hops" else 0.0
                cand = np.full(nbrs.size, val + step)
            better = cand < data[nbrs]
            for w, c in zip(nbrs[better], cand[better]):
                # Re-check per assignment: parallel arcs to the same
                # neighbor appear twice in nbrs, and the vectorized
                # `better` mask was computed against the pre-loop state.
                if c < data[w]:
                    data[w] = c
                    heapq.heappush(heap, (float(c), int(w)))
            batch_units += (hi - lo) + self.ASYNC_OVERHEAD + rep
            batch_edges += int(hi - lo)
            # Flush accounting every so often to bound round counts.
            if batch_edges >= 4096:
                profile.add_round(units=batch_units,
                                  memory_bytes=24.0 * batch_edges,
                                  skew=0.1)
                batch_units = 0.0
                batch_edges = 0
        if batch_units:
            profile.add_round(units=batch_units,
                              memory_bytes=24.0 * batch_edges, skew=0.1)
        gathered_edges = scattered_edges
        stats = {
            "supersteps": processed,
            "gathered_edges": gathered_edges,
            "scattered_edges": scattered_edges,
            "replication_factor": self.cut.replication_factor,
        }
        return data, processed, profile, stats
