"""Random vertex-cut edge partitioning (PowerGraph's default ingress).

PowerGraph assigns *edges* to partitions and replicates vertices that
appear in multiple partitions (one master plus mirrors).  High-degree
vertices therefore never serialize on a single partition -- the
structural reason the paper offers for PowerGraph's relative strength on
the dense dota-league graph (Sec. IV-C): "the efficient edge-cut
[sic: vertex-cut] partitioning scheme ... can more efficiently deal
with the high degree vertices".

The replication factor (average mirrors per vertex) is the key derived
quantity: every GAS superstep pays one mirror-synchronization message
per active replica.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["VertexCut", "random_vertex_cut"]


@dataclass
class VertexCut:
    """Edge-to-partition assignment plus replication bookkeeping."""

    n_vertices: int
    n_partitions: int
    #: partition id per arc (aligned with the arc arrays it was built on)
    edge_partition: np.ndarray
    #: number of partitions each vertex appears in (0 for isolated).
    replicas: np.ndarray
    #: master partition per vertex.
    master: np.ndarray

    @property
    def replication_factor(self) -> float:
        """Average replicas over vertices that appear at all."""
        present = self.replicas > 0
        if not present.any():
            return 0.0
        return float(self.replicas[present].mean())

    def mirrors(self) -> int:
        """Total mirror count (replicas beyond the master)."""
        present = self.replicas > 0
        return int((self.replicas[present] - 1).sum())


def random_vertex_cut(src: np.ndarray, dst: np.ndarray, n_vertices: int,
                      n_partitions: int, seed: int = 7) -> VertexCut:
    """Hash-random edge placement, the ``random`` ingress method."""
    if n_partitions < 1:
        raise ConfigError("need at least one partition")
    rng = np.random.default_rng(seed)
    m = src.size
    edge_partition = rng.integers(0, n_partitions, size=m, dtype=np.int64)

    # Vertex presence per partition via unique (vertex, partition) pairs.
    pairs_v = np.concatenate([src, dst])
    pairs_p = np.concatenate([edge_partition, edge_partition])
    key = pairs_v * np.int64(n_partitions) + pairs_p
    uniq = np.unique(key)
    verts = uniq // n_partitions
    replicas = np.bincount(verts.astype(np.int64), minlength=n_vertices)

    # Master: the first (lowest-id) partition hosting the vertex.
    master = np.full(n_vertices, -1, dtype=np.int64)
    parts = uniq % n_partitions
    # uniq is sorted by key = vertex * P + partition, so the first entry
    # per vertex is its lowest partition.
    first = np.ones(uniq.size, dtype=bool)
    first[1:] = verts[1:] != verts[:-1]
    master[verts[first].astype(np.int64)] = parts[first].astype(np.int64)

    return VertexCut(
        n_vertices=n_vertices, n_partitions=n_partitions,
        edge_partition=edge_partition, replicas=replicas, master=master)
