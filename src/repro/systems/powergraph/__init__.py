"""PowerGraph reimplementation.

"PowerGraph, a library and programming model for distributed (and
shared memory) graph-parallel computation ... Parallelism is achieved
via a combination of OpenMP and light-weight, user-level threads called
fibers.  PowerGraph uses a novel storage scheme on top of CSR."
(paper Sec. III-C)

Behavioural fidelity points:

* the gather-apply-scatter (GAS) vertex-program abstraction executed by
  a synchronous engine over a random *vertex-cut* edge partitioning,
  with master/mirror replication whose synchronization cost is charged
  per superstep -- the fixed overhead that makes PowerGraph slowest on
  small graphs (Figs 3-4) yet lets it handle dota-league's high-degree
  vertices gracefully (Sec. IV-C);
* **no BFS reference implementation** in its toolkits (Figs 2 and 8
  omit it); Graphalytics drives PowerGraph BFS through a
  distance-propagation GAS program, exposed here only via
  :meth:`~repro.systems.powergraph.system.PowerGraphSystem.run_toolkit_extension`;
* file read and graph ingest (partitioning) are fused -- construction
  is not separately measurable.
"""

from repro.systems.powergraph.system import PowerGraphSystem

__all__ = ["PowerGraphSystem"]
