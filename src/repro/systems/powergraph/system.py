"""PowerGraph system wrapper (GAS engine, fused load, no BFS)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import formats
from repro.datasets.homogenize import HomogenizedDataset
from repro.errors import SystemCapabilityError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.machine.threads import WorkProfile
from repro.systems import calibration
from repro.systems.base import GraphSystem, KernelResult
from repro.systems.powergraph import programs
from repro.systems.powergraph.gas import GasEngine
from repro.systems.powergraph.partition import VertexCut, random_vertex_cut

__all__ = ["PowerGraphSystem", "PowerGraphData"]


@dataclass
class PowerGraphData:
    """Partitioned graph: directed engine + symmetrized engine (WCC)."""

    engine: GasEngine
    engine_sym: GasEngine
    cut: VertexCut
    n: int

    @property
    def n_arcs(self) -> int:
        return self.engine.out.n_edges

    def nbytes(self) -> int:
        """Both engines' CSR pairs plus the cut's mirror tables."""
        total = 0
        for eng in (self.engine, self.engine_sym):
            total += eng.inn.nbytes() + eng.out.nbytes()
        total += (self.cut.edge_partition.nbytes
                  + self.cut.replicas.nbytes + self.cut.master.nbytes)
        return total


class PowerGraphSystem(GraphSystem):
    """PowerGraph (Sec. III-C item 5)."""

    name = "powergraph"
    #: No BFS: "PowerGraph ... doesn't provide a reference
    #: implementation of BFS in its toolkits" (Sec. III-D).
    provides = frozenset({"sssp", "pagerank", "wcc", "cdlp", "lcc",
                          "kcore", "mis"})
    #: Reads the TSV and partitions in one ingest pass.
    separable_construction = False
    input_key = "tsv"

    def __init__(self, machine=None, n_threads: int = 32,
                 n_partitions: int | None = None,
                 engine: str = "sync", shards: int = 1,
                 shard_strategy: str = "edge_blocks"):
        # ``shards`` accepted for interface homogeneity; PowerGraph's
        # GAS programs model their own partitioned execution already.
        super().__init__(machine=machine, n_threads=n_threads,
                         shards=shards, shard_strategy=shard_strategy)
        #: One partition per fiber-hosting thread by default.
        self.n_partitions = n_partitions or max(n_threads, 2)
        if engine not in ("sync", "async"):
            raise SystemCapabilityError(
                "engine must be 'sync' or 'async'")
        #: PowerGraph's ``--engine`` flag: the synchronous BSP engine
        #: (the paper's configuration) or the asynchronous
        #: fiber-scheduled one (min-programs only).
        self.engine_kind = engine

    # -- loading -------------------------------------------------------
    def _read_input(self, dataset: HomogenizedDataset) -> EdgeList:
        return formats.read_powergraph_tsv(
            dataset.path("tsv"), n_vertices=dataset.n_vertices,
            directed=dataset.directed, name=dataset.name)

    def _build(self, edges: EdgeList, dataset: HomogenizedDataset):
        profile = WorkProfile()
        el = edges if dataset.directed else edges.symmetrized()
        m = el.n_edges
        cut = random_vertex_cut(el.src, el.dst, el.n_vertices,
                                self.n_partitions)
        # Ingest: edge placement, mirror table construction, local CSR
        # finalization -- charged per edge plus per replica.
        profile.add_round(units=m + cut.mirrors(),
                          memory_bytes=40.0 * m, skew=0.05)
        inn = CSRGraph.from_arrays(el.dst, el.src, el.n_vertices,
                                   weights=el.weights)
        out = CSRGraph.from_arrays(el.src, el.dst, el.n_vertices,
                                   weights=el.weights)
        profile.add_round(units=m, memory_bytes=24.0 * m, skew=0.05)

        sym = el.symmetrized() if dataset.directed else el
        inn_s = CSRGraph.from_arrays(sym.dst, sym.src, sym.n_vertices)
        out_s = CSRGraph.from_arrays(sym.src, sym.dst, sym.n_vertices)
        profile.add_round(units=sym.n_edges, memory_bytes=16.0 * sym.n_edges,
                          skew=0.05)
        from repro.systems.powergraph.gas import AsyncGasEngine

        engine_cls = (AsyncGasEngine if self.engine_kind == "async"
                      else GasEngine)
        data = PowerGraphData(
            engine=engine_cls(inn, out, cut),
            engine_sym=engine_cls(inn_s, out_s, cut),
            cut=cut, n=el.n_vertices)
        return data, profile

    def _n_arcs(self, data: PowerGraphData) -> int:
        return data.n_arcs

    # -- artifact cache ------------------------------------------------
    def _cache_token(self) -> dict:
        # The cut depends on the partition count; the engines are
        # rebuilt around the arrays per instance, but engine kind rides
        # in the key so sync/async studies never alias.
        return {"n_partitions": self.n_partitions,
                "engine": self.engine_kind}

    def _pack_data(self, data: PowerGraphData):
        arrays = {"cut_edge_partition": data.cut.edge_partition,
                  "cut_replicas": data.cut.replicas,
                  "cut_master": data.cut.master}
        arrays.update(data.engine.inn.to_arrays_map("inn_"))
        arrays.update(data.engine.out.to_arrays_map("out_"))
        arrays.update(data.engine_sym.inn.to_arrays_map("inns_"))
        arrays.update(data.engine_sym.out.to_arrays_map("outs_"))
        return arrays, {"n": data.n,
                        "n_partitions": data.cut.n_partitions}

    def _unpack_data(self, arrays, meta, dataset) -> PowerGraphData:
        from repro.systems.powergraph.gas import AsyncGasEngine

        n = int(meta["n"])
        cut = VertexCut(n_vertices=n,
                        n_partitions=int(meta["n_partitions"]),
                        edge_partition=arrays["cut_edge_partition"],
                        replicas=arrays["cut_replicas"],
                        master=arrays["cut_master"])
        engine_cls = (AsyncGasEngine if self.engine_kind == "async"
                      else GasEngine)
        return PowerGraphData(
            engine=engine_cls(CSRGraph.from_arrays_map(arrays, "inn_"),
                              CSRGraph.from_arrays_map(arrays, "out_"),
                              cut),
            engine_sym=engine_cls(
                CSRGraph.from_arrays_map(arrays, "inns_"),
                CSRGraph.from_arrays_map(arrays, "outs_"), cut),
            cut=cut, n=n)

    # -- kernels -------------------------------------------------------
    def _run_sssp(self, loaded, root: int):
        dist, steps, profile, stats = programs.run_sssp(
            loaded.data.engine, root)
        return ({"dist": dist}, profile, steps,
                {"replication_factor": stats["replication_factor"],
                 "gathered_edges": float(stats["gathered_edges"])})

    def _run_pagerank(self, loaded, epsilon: float = 6e-8,
                      damping: float = 0.85, max_iterations: int = 1000):
        rank, iterations, profile, stats = programs.pagerank_gas(
            loaded.data.engine, damping=damping, epsilon=epsilon,
            max_iterations=max_iterations)
        return ({"rank": rank}, profile, iterations,
                {"replication_factor": stats["replication_factor"]})

    def _run_wcc(self, loaded):
        labels, steps, profile, stats = programs.run_wcc(
            loaded.data.engine_sym)
        return ({"labels": labels}, profile, steps,
                {"replication_factor": stats["replication_factor"]})

    def _run_cdlp(self, loaded, iterations: int = 10):
        labels, iters, profile, stats = programs.cdlp_gas(
            loaded.data.engine, iterations=iterations)
        return ({"labels": labels}, profile, iters,
                {"replication_factor": stats["replication_factor"]})

    def _run_lcc(self, loaded):
        lcc, profile, stats = programs.lcc_gas(loaded.data.engine)
        return ({"lcc": lcc}, profile, None, {"wedges": stats["wedges"]})

    def _run_kcore(self, loaded):
        core, supersteps, profile, stats = programs.kcore_gas(
            loaded.data.engine)
        return ({"core": core}, profile, supersteps,
                {"replication_factor": stats["replication_factor"],
                 "max_core": float(core.max()) if core.size else 0.0})

    def _run_mis(self, loaded, seed: int | None = None):
        from repro.algorithms.mis import DEFAULT_MIS_SEED, mis_priorities

        pr = mis_priorities(loaded.data.n,
                            DEFAULT_MIS_SEED if seed is None else seed)
        in_set, supersteps, profile, stats = programs.mis_gas(
            loaded.data.engine, pr)
        return ({"in_set": in_set.astype(np.int64)}, profile, supersteps,
                {"replication_factor": stats["replication_factor"],
                 "set_size": float(in_set.sum())})

    # -- the Graphalytics BFS driver -----------------------------------
    def run_toolkit_extension(self, loaded, program: str,
                              root: int | None = None) -> KernelResult:
        """Run a non-toolkit GAS program (how Graphalytics gets BFS).

        Only ``"bfs-hops"`` is defined; it is *not* part of
        ``provides`` on purpose -- EPG* refuses it (Fig 2/8 holes), the
        Graphalytics harness uses it (Tables I-II).
        """
        if program != "bfs-hops":
            raise SystemCapabilityError(
                f"unknown toolkit extension {program!r}")
        if root is None:
            raise SystemCapabilityError("bfs-hops requires a root")
        hops, steps, profile, stats = programs.run_bfs_hops(
            loaded.data.engine, int(root))
        level = np.where(np.isfinite(hops), hops, -1).astype(np.int64)
        sim = self.thread_model.simulate(
            profile, calibration.cost_params(self.name, "sssp",
                                             self.machine),
            self.n_threads)
        return KernelResult(
            system=self.name, algorithm="bfs", time_s=sim.time_s, sim=sim,
            profile=profile, output={"level": level}, root=root,
            iterations=steps,
            counters={"replication_factor": stats["replication_factor"]})
