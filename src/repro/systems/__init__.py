"""Reimplementations of the five graph processing systems.

Each subpackage is a genuinely distinct implementation -- different data
structure, different algorithmic strategy, different phase structure --
mirroring the systems the paper compares (Sec. III-C):

==============  =====================================================
graph500        OpenMP reference BFS: CSR + bitmap, level-synchronous,
                generates its own Kronecker graph, BFS only
gap             GAP Benchmark Suite: CSR, direction-optimizing BFS
                (alpha/beta), delta-stepping SSSP, PageRank, CC, ...
graphbig        vertex-centric property-graph framework; reads the
                input file and builds the graph simultaneously
graphmat        everything is generalized SpMV over a DCSR matrix;
                separate read / build / run phases with its own logs
powergraph      gather-apply-scatter engine over a vertex-cut
                partitioning; provides *no* BFS reference
==============  =====================================================

All systems share the :class:`~repro.systems.base.GraphSystem`
interface; :mod:`~repro.systems.calibration` holds the cost/power
constants with their paper anchors.
"""

from repro.systems.base import GraphSystem, KernelResult, LoadedGraph
from repro.systems.registry import (
    ALL_SYSTEM_NAMES,
    available_systems,
    create_system,
)

__all__ = [
    "GraphSystem",
    "KernelResult",
    "LoadedGraph",
    "create_system",
    "available_systems",
    "ALL_SYSTEM_NAMES",
]
