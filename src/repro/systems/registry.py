"""System registry: EPG* phase 1 ("installing libraries").

The paper's install phase checks out stable forks of each package; here
"installation" is registering a factory.  The registry doubles as the
extension point Sec. V gestures at (adding frameworks to a package
manager): third-party systems register with :func:`register_system` and
immediately participate in every experiment.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.systems.base import GraphSystem

__all__ = ["ALL_SYSTEM_NAMES", "available_systems", "create_system",
           "register_system", "unregister_system"]

_FACTORIES: dict[str, Callable[..., GraphSystem]] = {}


def register_system(name: str, factory: Callable[..., GraphSystem],
                    replace: bool = False) -> None:
    """Register a system factory under ``name``."""
    if name in _FACTORIES and not replace:
        raise ConfigError(f"system {name!r} already registered")
    _FACTORIES[name] = factory


def unregister_system(name: str) -> None:
    """Remove a previously registered system (built-ins included --
    they re-register lazily on the next lookup)."""
    try:
        del _FACTORIES[name]
    except KeyError:
        raise ConfigError(f"system {name!r} is not registered") from None


def _ensure_builtin() -> None:
    """(Re-)register any missing built-in; an unregistered or replaced
    built-in name heals on the next lookup."""
    if all(name in _FACTORIES for name in ALL_SYSTEM_NAMES):
        return
    from repro.systems.gap import GapSystem
    from repro.systems.graph500 import Graph500System
    from repro.systems.graphbig import GraphBigSystem
    from repro.systems.graphmat import GraphMatSystem
    from repro.systems.powergraph import PowerGraphSystem

    for cls in (GapSystem, Graph500System, GraphBigSystem, GraphMatSystem,
                PowerGraphSystem):
        _FACTORIES.setdefault(cls.name, cls)


def available_systems() -> list[str]:
    """Names of every registered system, built-ins included."""
    _ensure_builtin()
    return sorted(_FACTORIES)


def create_system(name: str, **kwargs) -> GraphSystem:
    """Instantiate a registered system (e.g. ``create_system("gap",
    n_threads=72)``)."""
    _ensure_builtin()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown system {name!r}; available: {available_systems()}"
        ) from None
    return factory(**kwargs)


ALL_SYSTEM_NAMES = ("gap", "graph500", "graphbig", "graphmat", "powergraph")
