"""Cost-model and power-model constants for every system.

This module is the numerical heart of the reproduction.  Each
(system, kernel) pair gets a :class:`~repro.machine.threads.CostParams`
whose ``sec_per_unit`` is *solved* so that the thread model prices the
paper's workload (Kronecker scale 22, 32 threads) at the paper's
measured time.  Anchors and their sources:

* BFS per-root times -- Table III (exact): GAP 0.01636 s, Graph500
  0.01884 s, GraphBIG 1.600 s, GraphMat 1.424 s.
* SSSP / PageRank / construction times -- read off Figs 2-4.
* CDLP / WCC / LCC per-iteration and total costs -- backed out of
  Tables I-II after subtracting the load times Graphalytics wrongly
  includes for some platforms (Sec. II).
* Power -- Table III CPU watts (exact) and Fig 9 DRAM watts.
* Scaling-shape parameters (imbalance, SMT yield, contention) -- Figs
  5-6: GAP most scalable, GraphMat passing GAP at 72 threads, Graph500
  slower on 2 threads than 1, GraphBIG flattest.

Because ``sec_per_unit`` is solved *through the same model* that later
prices real kernels, changing a shape parameter automatically re-anchors
the absolute times.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigError
from repro.machine.spec import MachineSpec, haswell_server
from repro.machine.threads import CostParams, ThreadModel
from repro.power.energy import PowerParams

__all__ = [
    "Anchor",
    "SystemShape",
    "cost_params",
    "build_params",
    "power_params",
    "noise_sensitivity",
    "read_rate_mbs",
    "SCALE22_N",
    "SCALE22_TUPLES",
    "SCALE22_ARCS",
]

# ----------------------------------------------------------------------
# The anchor workload: Kronecker scale 22 (Sec. IV-A).
# ----------------------------------------------------------------------
SCALE22_N = 1 << 22                    # 4,194,304 vertices
SCALE22_TUPLES = 16 * SCALE22_N        # ~67.1M generated edge tuples
SCALE22_ARCS = 2 * SCALE22_TUPLES      # ~134M stored arcs (symmetrized)
#: Estimated total wedge work sum(d(d-1)) of the scale-22 Kronecker
#: graph; dominated by the heavy tail.
SCALE22_WEDGES = 4.0e10
#: Typical BFS depth on the scale-22 graph (drives per-level vector ops).
SCALE22_BFS_LEVELS = 8


@dataclass(frozen=True)
class Anchor:
    """One calibration point: measured seconds on 32 threads at scale 22
    for an estimated number of abstract work units."""

    time_32t_s: float
    units: float
    skew: float = 0.10

    def __post_init__(self) -> None:
        if self.time_32t_s <= 0 or self.units <= 0:
            raise ConfigError("anchor time and units must be positive")


@dataclass(frozen=True)
class SystemShape:
    """Scaling-shape parameters shared by all of a system's kernels."""

    imbalance: float
    smt_yield: float
    contention: float
    contention_decay: float
    barrier_s: float
    bytes_per_unit: float = 16.0


# ----------------------------------------------------------------------
# Shapes (Figs 5-6).
# ----------------------------------------------------------------------
_SHAPES: dict[str, SystemShape] = {
    # GAP: best scaling overall; mild imbalance, strong SMT benefit.
    "gap": SystemShape(imbalance=0.42, smt_yield=0.42, contention=0.08,
                       contention_decay=4.0, barrier_s=2.5e-6),
    # Graph500: slower on 2 threads than 1 (Fig 6) -- strong small-n
    # contention from atomics on the shared frontier; weak SMT yield.
    "graph500": SystemShape(imbalance=0.52, smt_yield=0.22,
                            contention=1.35, contention_decay=2.0,
                            barrier_s=4.0e-6),
    # GraphBIG: flattest speedup curve of Figs 5-6.
    "graphbig": SystemShape(imbalance=0.95, smt_yield=0.12,
                            contention=0.25, contention_decay=3.0,
                            barrier_s=6.0e-6),
    # GraphMat: close behind GAP (slightly more row-partition imbalance)
    # but the best SMT yield, letting it edge past GAP at 72 threads
    # (Fig 5) -- bulk-synchronous SpMV loves hyperthreads.
    "graphmat": SystemShape(imbalance=0.48, smt_yield=0.55,
                            contention=0.10, contention_decay=4.0,
                            barrier_s=5.0e-6),
    # PowerGraph: fiber scheduler hides some imbalance but adds sync.
    "powergraph": SystemShape(imbalance=0.60, smt_yield=0.30,
                              contention=0.15, contention_decay=3.0,
                              barrier_s=1.2e-5),
}

# ----------------------------------------------------------------------
# Kernel anchors.  "units" are what each system's kernel actually counts
# while running (edges examined, nnz per sweep, wedges, ...); see the
# per-system modules.  PR/CDLP/WCC anchors are per-sweep.
# ----------------------------------------------------------------------
_M = float(SCALE22_ARCS)
_N = float(SCALE22_N)

# Unit counts below marked "measured" are the per-arc work fractions the
# actual kernels report on Kronecker graphs (they are scale-stable for
# fixed edge factor; verified at scales 10-14 by
# tests/systems/test_calibration.py), projected to the scale-22 arc
# count.  Anchor *times* exclude the per-invocation startup overhead
# (_STARTUP_S), which the thread model adds separately.
_ANCHORS: dict[str, dict[str, Anchor]] = {
    "gap": {
        # Direction-optimizing BFS examines ~17% of arcs per root
        # (measured) vs. the Graph500's 102%.
        "bfs": Anchor(0.01636, 0.17 * _M),
        # Delta-stepping: ~5.3 relaxation units per arc (measured).
        "sssp": Anchor(0.150, 5.3 * _M),
        # One pull sweep touches every arc plus every vertex.
        "pagerank": Anchor(0.075, _M + _N),
        "wcc": Anchor(0.050, 2.0 * _M + _N),
        "cdlp": Anchor(0.50, _M + _N),
        "lcc": Anchor(190.0, SCALE22_WEDGES),
        # Extension kernels (Sec. V): anchors follow the GAP paper's
        # reported order of magnitude on comparable Kronecker graphs,
        # not this paper (which does not time them).
        "bc": Anchor(2.0, 16 * 2 * 0.8 * _M),
        "tc": Anchor(60.0, SCALE22_WEDGES / 2.0),
        # Structural matrix (docs/algorithms.md): bucket-queue peel
        # touches each arc ~twice (decrement + re-bucket) ...
        "kcore": Anchor(0.080, 2.0 * _M + 2.0 * _N),
        # ... Luby rounds touch live arcs ~1.5x before dying out ...
        "mis": Anchor(0.040, 1.5 * _M + _N),
        # ... and Afforest's sampled hooks beat full SV's 2 units/arc.
        "cc": Anchor(0.030, _M + _N),
    },
    "graph500": {
        # Top-down only: every arc examined once per root (measured
        # 1.02 units/arc).
        "bfs": Anchor(0.01884, 1.02 * _M),
    },
    "graphbig": {
        # Edge work plus the per-visit property-API overhead
        # (PROPERTY_ACCESS_COST edge-equivalents per vertex).
        "bfs": Anchor(1.600, 1.02 * _M + 16.0 * _N),
        # Queue Bellman-Ford: ~4.9 relaxations per arc (measured), with
        # ~2.5 property visits per vertex across supersteps.
        "sssp": Anchor(0.60, 4.9 * _M + 40.0 * _N),
        "pagerank": Anchor(0.47, _M + _N),
        "wcc": Anchor(0.30, _M + _N),
        "cdlp": Anchor(0.74, _M + _N),
        "lcc": Anchor(1800.0, SCALE22_WEDGES),
        # Property-API visits dominate the structural kernels too.
        "kcore": Anchor(0.90, 2.0 * _M + 16.0 * _N),
        "mis": Anchor(0.55, 1.5 * _M + 16.0 * _N),
        "cc": Anchor(0.22, _M + _N),
    },
    "graphmat": {
        # Masked SpMV per level: ~1.15 units/arc (measured; all arcs
        # once plus an O(n) vector op per level).
        "bfs": Anchor(1.424, 1.15 * _M),
        # Min-plus Bellman-Ford sweeps: ~5.2 units/arc (measured).
        "sssp": Anchor(0.50, 5.2 * _M),
        "pagerank": Anchor(0.20, _M + _N),
        "wcc": Anchor(0.175, _M + _N),
        "cdlp": Anchor(4.0, _M + _N),
        "lcc": Anchor(395.0, SCALE22_WEDGES),
        # Full-sweep degree recounts: one SpMV per peel superstep.
        "kcore": Anchor(0.60, 3.0 * _M + _N),
        "mis": Anchor(0.30, 2.0 * _M + _N),
    },
    "powergraph": {
        # GAS SSSP: gather + scatter + mirror sync ~= 19.5 units/arc
        # (measured).  No BFS toolkit; Graphalytics drives BFS through
        # the hop-distance GAS program, priced via these constants.
        "sssp": Anchor(0.90, 19.5 * _M),
        # Per sweep: nnz + n + replication * n ~= 1.5 units/arc
        # (measured).
        "pagerank": Anchor(0.30, 1.5 * _M),
        "wcc": Anchor(0.25, _M + _N),
        "cdlp": Anchor(2.0, 1.5 * _M),
        "lcc": Anchor(265.0, SCALE22_WEDGES),
        # Mirror-synchronized apply per superstep on top of edge work.
        "kcore": Anchor(0.70, 2.5 * _M + _N),
        "mis": Anchor(0.45, 2.0 * _M + _N),
    },
}

#: Data-structure construction anchors (Fig 2 right, Fig 3 right): time
#: to turn the in-RAM tuple list into the system's structure.  Units are
#: edge tuples.
_BUILD_ANCHORS: dict[str, Anchor] = {
    "gap": Anchor(1.25, float(SCALE22_TUPLES), skew=0.05),
    "graph500": Anchor(3.30, float(SCALE22_TUPLES), skew=0.05),
    "graphbig": Anchor(4.00, float(SCALE22_TUPLES), skew=0.05),
    "graphmat": Anchor(3.00, float(SCALE22_TUPLES), skew=0.05),
    # Vertex-cut partitioning makes PowerGraph's ingest the slowest.
    "powergraph": Anchor(8.00, float(SCALE22_TUPLES), skew=0.05),
}

#: Fixed per-kernel-invocation overhead (engine init/teardown), seconds.
#: These dominate at small scales -- the paper's point that "the
#: overhead of these frameworks may dominate for smaller problem sizes"
#: (Sec. VI) is carried almost entirely by these constants.
_STARTUP_S: dict[str, float] = {
    "gap": 2.0e-5,          # a bare OpenMP region fork
    "graph500": 2.0e-5,
    "graphbig": 5.0e-4,     # property-graph task-queue setup
    "graphmat": 5.0e-4,     # SpMV scheduler spin-up
    "powergraph": 0.9,      # fiber engine launch dominates small runs
}

#: Table III (CPU) and Fig 9 (DRAM) power anchors at 32 threads.
_POWER: dict[str, PowerParams] = {
    "gap": PowerParams(72.38, 16.5, smt_yield=0.42),
    "graph500": PowerParams(97.17, 18.5, smt_yield=0.22),
    "graphbig": PowerParams(78.01, 14.5, smt_yield=0.12),
    "graphmat": PowerParams(70.12, 11.5, smt_yield=0.55),
    "powergraph": PowerParams(75.0, 13.0, smt_yield=0.30),
}

#: Relative sensitivity to background CPU spikes (Sec. IV-B: the
#: Graph500's short back-to-back kernels are the most exposed).
_NOISE_SENSITIVITY: dict[str, float] = {
    "gap": 1.0,
    "graph500": 3.0,
    "graphbig": 0.6,
    "graphmat": 0.7,
    "powergraph": 0.8,
}

#: Effective file ingest rates in MB/s, including format parse cost.
#: The GraphMat binary rate reproduces the Table I log excerpt: 610 MB
#: of dota-league records read in 2.65 s ~= 230 MB/s.
_READ_RATE_MBS: dict[str, float] = {
    "el": 85.0,        # whitespace text parsing
    "wel": 85.0,
    "tsv": 85.0,
    "csv": 70.0,       # GraphBIG's quoted CSV is slower to parse
    "mtxbin": 230.0,
    "g500": 450.0,
    "sg": 450.0,
    "wsg": 450.0,
}


# ----------------------------------------------------------------------
# Solvers
# ----------------------------------------------------------------------
def _solve_sec_per_unit(anchor: Anchor, shape: SystemShape,
                        machine: MachineSpec) -> float:
    """Invert the thread model at the 32-thread anchor point.

    ``T = units * spu / P(32) * I(32) * X(32)`` ignoring barriers and the
    roofline (both negligible at anchor magnitudes), so
    ``spu = T * P / (units * I * X)``.
    """
    tm = ThreadModel(machine)
    probe = CostParams(
        sec_per_unit=1.0, imbalance=shape.imbalance,
        contention=shape.contention,
        contention_decay=shape.contention_decay,
        smt_yield=shape.smt_yield, barrier_s=shape.barrier_s,
    )
    p = tm.effective_parallelism(32, shape.smt_yield)
    imb = tm.imbalance_factor(32, probe, anchor.skew)
    x = tm.contention_factor(32, probe)
    return anchor.time_32t_s * p / (anchor.units * imb * x)


@lru_cache(maxsize=None)
def cost_params(system: str, algorithm: str,
                machine: MachineSpec | None = None) -> CostParams:
    """CostParams for one (system, kernel), anchored to the paper.

    ``machine`` is accepted for interface symmetry but ignored for the
    solve: the anchors were measured on the paper's Haswell server, so
    ``sec_per_unit`` is a property of the *software*, always derived at
    that reference point.  Pricing on a different
    :class:`~repro.machine.spec.MachineSpec` happens in the
    :class:`~repro.machine.threads.ThreadModel` that consumes these
    params.
    """
    try:
        shape = _SHAPES[system]
        anchor = _ANCHORS[system][algorithm]
    except KeyError:
        raise ConfigError(
            f"no calibration for system={system!r} algorithm={algorithm!r}"
        ) from None
    return CostParams(
        sec_per_unit=_solve_sec_per_unit(anchor, shape, haswell_server()),
        startup_s=_STARTUP_S[system],
        barrier_s=shape.barrier_s,
        imbalance=shape.imbalance,
        contention=shape.contention,
        contention_decay=shape.contention_decay,
        smt_yield=shape.smt_yield,
        bytes_per_unit=shape.bytes_per_unit,
    )


@lru_cache(maxsize=None)
def build_params(system: str,
                 machine: MachineSpec | None = None) -> CostParams:
    """CostParams for the data-structure construction phase (the solve
    is pinned to the reference server; see :func:`cost_params`)."""
    try:
        shape = _SHAPES[system]
        anchor = _BUILD_ANCHORS[system]
    except KeyError:
        raise ConfigError(f"no build calibration for {system!r}") from None
    return CostParams(
        sec_per_unit=_solve_sec_per_unit(anchor, shape, haswell_server()),
        startup_s=0.0,
        barrier_s=shape.barrier_s,
        imbalance=shape.imbalance,
        contention=0.0,          # construction is sort/scan dominated
        smt_yield=shape.smt_yield,
        bytes_per_unit=24.0,
    )


def power_params(system: str) -> PowerParams:
    try:
        return _POWER[system]
    except KeyError:
        raise ConfigError(f"no power calibration for {system!r}") from None


def noise_sensitivity(system: str) -> float:
    try:
        return _NOISE_SENSITIVITY[system]
    except KeyError:
        raise ConfigError(f"no noise calibration for {system!r}") from None


def read_rate_mbs(format_key: str) -> float:
    try:
        return _READ_RATE_MBS[format_key]
    except KeyError:
        raise ConfigError(f"no ingest rate for format {format_key!r}") from None
