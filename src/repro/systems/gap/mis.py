"""GAP maximal independent set (frontier-driven Luby rounds).

Priorities come from the shared seeded permutation
(:func:`repro.algorithms.mis.mis_priorities` -- the same helper every
system uses, like CDLP's shared tie-break rule), which pins the result
to the unique greedy-by-priority MIS and keeps the cross-system
bit-identity contract.  The sweep itself is edge-centric in the GAP
style: gather the undecided frontier's neighborhoods with
:func:`~repro.graph.frontier.gather_slots`, scatter-min priorities,
then gather once more to knock out the winners' neighbors.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.mis import DEFAULT_MIS_SEED, mis_priorities
from repro.graph.frontier import gather_slots
from repro.graph.scratch import scratch_for
from repro.graph.simple import simple_undirected_view
from repro.machine.threads import WorkProfile
from repro.systems.gap.graph import GapGraph

__all__ = ["mis_luby"]


def mis_luby(graph: GapGraph, seed: int = DEFAULT_MIS_SEED
             ) -> tuple[np.ndarray, int, dict]:
    """Return (membership mask, rounds, stats dict with profile)."""
    n = graph.n
    out = graph.out
    view = simple_undirected_view(out.source_ids(), out.col_idx, n)
    profile = WorkProfile()
    profile.add_round(units=float(out.n_edges + n),
                      memory_bytes=16.0 * out.n_edges, skew=0.05)
    in_set = np.zeros(n, dtype=bool)
    if n == 0:
        return in_set, 0, {"profile": profile, "set_size": 0}
    scratch = scratch_for(graph, n, max(out.n_edges, view.nnz))
    pr = mis_priorities(n, seed)
    decided = np.zeros(n, dtype=bool)
    sentinel = np.int64(n)
    max_deg = float(view.degrees.max()) if n else 0.0
    rounds = 0
    while not decided.all():
        rounds += 1
        undecided = np.flatnonzero(~decided)
        gs = gather_slots(view.indptr, undecided, scratch)
        # Consume counts/offsets *now*: the winners' gather below
        # reuses the same scratch segment buffer.
        srcs = np.repeat(undecided, gs.counts)
        nbrs = view.indices[gs.slots]
        live = ~decided[nbrs]
        best = np.full(n, sentinel, dtype=np.int64)
        if live.any():
            np.minimum.at(best, srcs[live], pr[nbrs[live]])
        winners = ~decided & (pr < best)
        in_set[winners] = True
        decided[winners] = True
        widx = np.flatnonzero(winners)
        ws = gather_slots(view.indptr, widx, scratch)
        decided[view.indices[ws.slots]] = True
        profile.add_round(
            units=float(gs.total + ws.total + undecided.size),
            memory_bytes=24.0 * (gs.total + ws.total),
            skew=min(max_deg / max(gs.total, 1.0), 0.2))
    return in_set, rounds, {"profile": profile,
                            "set_size": int(in_set.sum())}
