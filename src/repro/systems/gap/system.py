"""GAP Benchmark Suite system wrapper."""

from __future__ import annotations

import numpy as np

from repro.datasets import formats
from repro.datasets.homogenize import HomogenizedDataset
from repro.errors import SystemCapabilityError
from repro.graph.edgelist import EdgeList
from repro.machine.threads import WorkProfile
from repro.systems.base import GraphSystem
from repro.systems.gap.bfs import DEFAULT_ALPHA, DEFAULT_BETA, dobfs
from repro.systems.gap.cc import afforest, shiloach_vishkin
from repro.systems.gap.graph import GapGraph, build_gap_graph
from repro.systems.gap.kcore import kcore_peel
from repro.systems.gap.mis import mis_luby
from repro.systems.gap.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_EPSILON,
    pagerank_gs,
)
from repro.systems.gap.sssp import DEFAULT_DELTA, delta_stepping

__all__ = ["GapSystem"]


class GapSystem(GraphSystem):
    """The GAP Benchmark Suite (Sec. III-C item 2).

    Provides all six GAP benchmarks: the paper's three (bfs, sssp,
    pagerank) plus cc/wcc, the Sec. V extension kernels bc and tc, and
    the widened structural matrix (kcore, mis, and afforest cc).
    """

    name = "gap"
    provides = frozenset({"bfs", "sssp", "pagerank", "wcc", "bc", "tc",
                          "kcore", "mis", "cc"})
    separable_construction = True
    #: EPG* feeds GAP the weighted text edge list; the ``.sg``
    #: serialized form is available through ``use_serialized=True``.
    input_key = "wel"

    def __init__(self, machine=None, n_threads: int = 32,
                 use_serialized: bool = False,
                 weight_dtype: str = "float64", shards: int = 1,
                 shard_strategy: str = "edge_blocks"):
        super().__init__(machine=machine, n_threads=n_threads,
                         shards=shards, shard_strategy=shard_strategy)
        self.use_serialized = use_serialized
        if use_serialized:
            self.input_key = "wsg"
        if weight_dtype not in ("float64", "int32"):
            raise SystemCapabilityError(
                "weight_dtype must be 'float64' or 'int32'")
        #: Paper Sec. IV-A: "the GAP Benchmark Suite can be recompiled
        #: to store weights as integers ... in cases where weights like
        #: 0.2 are cast to 0" -- int32 reproduces that build, including
        #: the truncation hazard (weights < 1 become 0).
        self.weight_dtype = weight_dtype

    # -- loading -------------------------------------------------------
    def _read_input(self, dataset: HomogenizedDataset) -> EdgeList:
        if self.use_serialized:
            csr = formats.read_sg(dataset.path("wsg"))
            src, dst = csr.to_edge_arrays()
            return EdgeList(src, dst, csr.n_vertices, weights=csr.weights,
                            directed=True, name=dataset.name)
        return formats.read_el(dataset.path("wel"),
                               n_vertices=dataset.n_vertices,
                               directed=dataset.directed,
                               name=dataset.name)

    def _build(self, edges: EdgeList, dataset: HomogenizedDataset
               ) -> tuple[GapGraph, WorkProfile]:
        if self.weight_dtype == "int32" and edges.weights is not None:
            # The integer-weight build truncates at ingest (0.2 -> 0).
            edges = EdgeList(
                edges.src, edges.dst, edges.n_vertices,
                weights=edges.weights.astype(np.int32).astype(
                    np.float64),
                directed=edges.directed, name=edges.name)
        # A serialized graph was already symmetrized by the converter.
        directed = True if self.use_serialized else dataset.directed
        graph, profile = build_gap_graph(edges, directed=directed)
        if self.use_serialized:
            # The .sg file *is* the CSR: deserialization replaces the
            # three construction passes with one mmap-style placement
            # pass (GAP's point in shipping the converter).  Keep only
            # the transpose build, which the file does not store.
            profile = WorkProfile(rounds=profile.rounds[-1:])
        return graph, profile

    def _n_arcs(self, data: GapGraph) -> int:
        return data.n_arcs

    # -- artifact cache ------------------------------------------------
    def _cache_token(self) -> dict:
        # Both knobs change the built bytes: int32 truncates weights at
        # ingest, and the serialized path skips symmetrization.
        return {"weight_dtype": self.weight_dtype,
                "serialized": self.use_serialized}

    def _pack_data(self, data: GapGraph):
        arrays = {}
        arrays.update(data.out.to_arrays_map("out_"))
        arrays.update(data.inn.to_arrays_map("inn_"))
        return arrays, {"n": data.n, "directed": data.directed}

    def _unpack_data(self, arrays, meta, dataset) -> GapGraph:
        from repro.graph.csr import CSRGraph

        return GapGraph(out=CSRGraph.from_arrays_map(arrays, "out_"),
                        inn=CSRGraph.from_arrays_map(arrays, "inn_"),
                        n=int(meta["n"]),
                        directed=bool(meta["directed"]))

    # -- kernels -------------------------------------------------------
    def _run_bfs(self, loaded, root: int, alpha: float = DEFAULT_ALPHA,
                 beta: float = DEFAULT_BETA):
        if self.shards > 1:
            from repro.shard.drivers import shard_dobfs

            engine = self._shard_engine(loaded, loaded.data.out,
                                        loaded.data.inn)
            parent, level, profile, stats = shard_dobfs(
                loaded.data, root, engine, alpha=alpha, beta=beta)
            self._note_shard_exchange("bfs", engine)
        else:
            parent, level, profile, stats = dobfs(
                loaded.data, root, alpha=alpha, beta=beta)
        counters = {"depth": float(stats["depth"])}
        counters["bottom_up_steps"] = float(stats["steps"].count("B"))
        return ({"parent": parent, "level": level}, profile, None, counters)

    def _run_sssp(self, loaded, root: int, delta: float = DEFAULT_DELTA):
        if self.shards > 1:
            from repro.shard.drivers import shard_delta_stepping

            engine = self._shard_engine(loaded, loaded.data.out,
                                        loaded.data.inn)
            dist, profile, stats = shard_delta_stepping(
                loaded.data, root, engine, delta=delta)
            self._note_shard_exchange("sssp", engine)
        else:
            dist, profile, stats = delta_stepping(loaded.data, root,
                                                  delta=delta)
        counters = {"phases": float(stats["phases"]),
                    "relaxations": float(stats["relaxations"])}
        return ({"dist": dist}, profile, None, counters)

    def _run_pagerank(self, loaded, epsilon: float = DEFAULT_EPSILON,
                      damping: float = DEFAULT_DAMPING,
                      max_iterations: int = 1000):
        rank, iterations, profile = pagerank_gs(
            loaded.data, damping=damping, epsilon=epsilon,
            max_iterations=max_iterations)
        return ({"rank": rank}, profile, iterations, {})

    def _run_wcc(self, loaded):
        labels, rounds, profile = shiloach_vishkin(loaded.data)
        return ({"labels": labels}, profile, rounds, {})

    def _run_cc(self, loaded, neighbor_rounds: int | None = None):
        from repro.systems.gap.cc import DEFAULT_NEIGHBOR_ROUNDS

        neighbor_rounds = neighbor_rounds or DEFAULT_NEIGHBOR_ROUNDS
        labels, rounds, profile = afforest(
            loaded.data, neighbor_rounds=neighbor_rounds)
        return ({"labels": labels}, profile, rounds, {})

    def _run_kcore(self, loaded):
        core, rounds, stats = kcore_peel(loaded.data)
        return ({"core": core}, stats["profile"], rounds,
                {"max_core": float(stats["max_core"])})

    def _run_mis(self, loaded, seed: int | None = None):
        from repro.algorithms.mis import DEFAULT_MIS_SEED

        in_set, rounds, stats = mis_luby(
            loaded.data, seed=DEFAULT_MIS_SEED if seed is None else seed)
        return ({"in_set": in_set.astype(np.int64)}, stats["profile"],
                rounds, {"set_size": float(stats["set_size"])})

    def _run_bc(self, loaded, n_sources: int | None = None,
                seed: int = 27):
        from repro.systems.gap.extras import DEFAULT_BC_SOURCES, bc_sampled

        n_sources = n_sources or DEFAULT_BC_SOURCES
        rng = np.random.default_rng(seed)
        n = loaded.n_vertices
        sources = rng.choice(n, size=min(n_sources, n), replace=False)
        scores, profile, stats = bc_sampled(loaded.data, sources)
        return ({"bc": scores}, profile, None,
                {"sources": stats["sources"],
                 "reached_edges": float(stats["reached_edges"])})

    def _run_tc(self, loaded):
        from repro.systems.gap.extras import tc_ordered

        count, profile, stats = tc_ordered(loaded.data)
        return ({"triangles": np.array([count], dtype=np.int64)},
                profile, None,
                {"triangles": float(count), "wedges": stats["wedges"]})

    # -- extras --------------------------------------------------------
    @staticmethod
    def weight_dtype_note() -> str:
        """Paper Sec. IV-A: GAP can be recompiled to store weights as
        integers, truncating values like 0.2 to 0.  This reproduction
        always stores float64 weights; the note is kept as API
        documentation for users comparing against integer-weight
        builds."""
        return "weights stored as float64 (recompile-to-int not modeled)"
