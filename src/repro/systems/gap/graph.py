"""GAP's internal graph: CSR in both directions plus degree caches."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.machine.threads import WorkProfile

__all__ = ["GapGraph", "build_gap_graph"]


@dataclass
class GapGraph:
    """Out- and in-adjacency with cached degrees (what ``BuildGraph``
    in GAP's ``builder.h`` produces)."""

    out: CSRGraph
    inn: CSRGraph
    n: int
    directed: bool

    @property
    def n_arcs(self) -> int:
        return self.out.n_edges

    def out_degree(self) -> np.ndarray:
        return self.out.out_degrees()

    def in_degree(self) -> np.ndarray:
        return self.inn.out_degrees()

    def nbytes(self) -> int:
        """Resident footprint: both CSR directions + degree caches."""
        return (self.out.nbytes() + self.inn.nbytes()
                + 2 * 8 * self.n)


def build_gap_graph(edges: EdgeList, directed: bool
                    ) -> tuple[GapGraph, WorkProfile]:
    """Construct the CSR pair, recording the construction work.

    GAP squishes the edge list (dedup is optional and off by default in
    the benchmark binaries, matching the Graph500 input contract), sorts
    it into CSR, then builds the transpose -- three passes over the
    tuples.
    """
    profile = WorkProfile()
    el = edges if directed else edges.symmetrized()
    m = el.n_edges
    # Pass 1: degree histogram; pass 2: placement; pass 3: transpose.
    profile.add_round(units=m, memory_bytes=16.0 * m, skew=0.05)
    out = CSRGraph.from_arrays(el.src, el.dst, el.n_vertices,
                               weights=el.weights)
    profile.add_round(units=m, memory_bytes=24.0 * m, skew=0.05)
    inn = CSRGraph.from_arrays(el.dst, el.src, el.n_vertices,
                               weights=el.weights)
    profile.add_round(units=m, memory_bytes=24.0 * m, skew=0.05)
    return GapGraph(out=out, inn=inn, n=el.n_vertices,
                    directed=directed), profile
