"""GAP's remaining benchmark kernels: BC and TC.

The full GAP Benchmark Suite ships six benchmarks (bfs, sssp, pr, cc,
bc, tc).  The paper's EPG* only drives the common three (Sec. III-D),
naming betweenness centrality and triangle counting as future work
(Sec. V); this module implements them so the harness can be extended,
with work profiles priced through dedicated calibration anchors.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.bc import brandes_single_source
from repro.algorithms.tc import triangle_count
from repro.machine.threads import WorkProfile
from repro.systems.gap.graph import GapGraph

__all__ = ["bc_sampled", "tc_ordered", "DEFAULT_BC_SOURCES"]

#: GAP's default: approximate BC from 16 sampled sources.
DEFAULT_BC_SOURCES = 16


def bc_sampled(graph: GapGraph, sources: np.ndarray
               ) -> tuple[np.ndarray, WorkProfile, dict]:
    """Approximate betweenness from sampled sources (GAP ``bc``).

    Work: two passes over the reached edges per source (forward sigma,
    backward dependency).
    """
    n = graph.n
    out = graph.out
    deg = out.out_degrees()
    scores = np.zeros(n)
    profile = WorkProfile()
    total_reached_edges = 0
    for s in np.asarray(sources, dtype=np.int64):
        delta, _, level = brandes_single_source(out, int(s))
        delta[s] = 0.0
        scores += delta
        reached = level >= 0
        edges = int(deg[reached].sum())
        total_reached_edges += edges
        # Forward + backward sweeps.
        profile.add_round(units=2.0 * edges + 2.0 * int(reached.sum()),
                          memory_bytes=40.0 * edges, skew=0.15)
    if len(sources):
        scores *= n / float(len(sources))
    stats = {"sources": int(len(sources)),
             "reached_edges": total_reached_edges}
    return scores, profile, stats


def tc_ordered(graph: GapGraph) -> tuple[int, WorkProfile, dict]:
    """Triangle count with degree-ordered orientation (GAP ``tc``).

    Work: the oriented wedge checks, ~sum over vertices of
    out-degree^2 under the orientation (roughly half the full wedge
    count).
    """
    count = triangle_count(graph.out)
    deg = graph.out_degree().astype(np.float64)
    wedges = float((deg * (deg - 1)).sum()) / 2.0
    profile = WorkProfile()
    profile.add_round(units=max(wedges, 1.0),
                      memory_bytes=8.0 * max(wedges, 1.0), skew=0.3)
    return count, profile, {"triangles": count, "wedges": wedges}
