"""Delta-stepping SSSP (GAP's ``sssp.cc``).

Vertices are kept in distance buckets of width ``delta``; the algorithm
repeatedly settles the lowest non-empty bucket, relaxing *light* edges
(w < delta) iteratively inside the bucket and *heavy* edges once when
the bucket drains.  The paper lists delta among the tunables EPG* leaves
at defaults (Sec. V); for the uniform (0,1] weights of the homogenized
datasets we default to 0.25.

The relaxation loop is vectorized: one round gathers every out-edge of
the current bucket (:func:`~repro.graph.frontier.gather_slots`) and
applies :func:`~repro.graph.frontier.segment_min_scatter` -- the count
of those gathered edges is exactly the work the cost model prices.

Bucket membership is tracked lazily (the shared
:class:`~repro.graph.frontier.BucketQueue`, which k-core peeling also
drives): vertices are pushed onto per-bucket
pending lists as their tentative bucket changes and stale entries are
filtered on pop (``bucket[v] == k``), replacing the old ``O(n)``
``np.flatnonzero(bucket == current)`` scan per bucket -- pure queue
bookkeeping, so the (bucket, members) sequence, distances, stats, and
profile are unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SystemCapabilityError
from repro.graph.frontier import (
    BucketQueue,
    gather_slots,
    segment_min_scatter,
)
from repro.graph.scratch import KernelScratch, scratch_for
from repro.machine.threads import WorkProfile
from repro.systems.gap.graph import GapGraph

__all__ = ["delta_stepping", "DEFAULT_DELTA"]

DEFAULT_DELTA = 0.25


def _relax(out, frontier: np.ndarray, dist: np.ndarray,
           light_mask: np.ndarray | None, scratch: KernelScratch
           ) -> tuple[np.ndarray, int]:
    """Relax the (light or heavy or all) out-edges of ``frontier``.

    Returns (vertices whose distance improved, edges relaxed).
    """
    gs = gather_slots(out.row_ptr, frontier, scratch)
    if gs.total == 0:
        return np.empty(0, dtype=np.int64), 0
    slots = gs.slots
    srcs = np.repeat(frontier, gs.counts)
    if light_mask is not None:
        keep = light_mask[slots]
        slots = slots[keep]
        srcs = srcs[keep]
        if slots.size == 0:
            return np.empty(0, dtype=np.int64), gs.total
    dsts = out.col_idx[slots]
    cand = dist[srcs] + out.weights[slots]
    better = cand < dist[dsts]
    dsts_b = dsts[better]
    cand_b = cand[better]
    if dsts_b.size == 0:
        return np.empty(0, dtype=np.int64), gs.total
    improved = segment_min_scatter(dist, dsts_b, cand_b, scratch)
    return improved, gs.total


def delta_stepping(graph: GapGraph, root: int,
                   delta: float = DEFAULT_DELTA
                   ) -> tuple[np.ndarray, WorkProfile, dict]:
    """Return (distances, work profile, stats)."""
    out = graph.out
    if out.weights is None:
        raise SystemCapabilityError("GAP SSSP needs a weighted graph")
    if delta <= 0:
        raise SystemCapabilityError("delta must be positive")
    n = graph.n
    scratch = scratch_for(graph, n, out.n_edges)
    dist = np.full(n, np.inf)
    dist[root] = 0.0
    light = out.weights < delta
    profile = WorkProfile()
    max_deg = float(out.out_degrees().max()) if n else 0.0

    bucket = np.full(n, -1, dtype=np.int64)
    bucket[root] = 0
    queue = BucketQueue()
    queue.push(np.array([root], dtype=np.int64),
               np.zeros(1, dtype=np.int64))
    relaxations = 0
    phases = 0
    while True:
        head = queue.pop(bucket)
        if head is None:
            break
        current, members = head
        settled_this_bucket: list[np.ndarray] = []
        # Light-edge phases: iterate inside the bucket.
        while members.size:
            phases += 1
            improved, examined = _relax(out, members, dist, light, scratch)
            relaxations += examined
            # Edge-parallel relaxation: hub skew capped (see bfs.py).
            skew = min(max_deg / max(examined, 1.0), 0.15)
            profile.add_round(units=examined + members.size,
                              memory_bytes=20.0 * examined, skew=skew)
            settled_this_bucket.append(members)
            bucket[members] = -2  # settled (tentatively)
            if improved.size:
                new_bucket = np.minimum(
                    (dist[improved] / delta).astype(np.int64),
                    np.iinfo(np.int64).max)
                stay = new_bucket == current
                bucket[improved] = new_bucket
                # Non-negative weights guarantee new_bucket >= current,
                # so everything not staying belongs to a later bucket.
                ahead = ~stay
                if ahead.any():
                    queue.push(improved[ahead], new_bucket[ahead])
                members = improved[stay]
            else:
                members = np.empty(0, dtype=np.int64)
        # Heavy-edge phase: once per bucket.
        settled = np.unique(np.concatenate(settled_this_bucket))
        phases += 1
        heavy = ~light
        improved, examined = _relax(out, settled, dist, heavy, scratch)
        relaxations += examined
        skew = min(max_deg / max(examined, 1.0), 0.15)
        profile.add_round(units=examined + settled.size,
                          memory_bytes=20.0 * examined, skew=skew)
        if improved.size:
            nb = (dist[improved] / delta).astype(np.int64)
            # Never reopen below the current bucket (weights >= 0).
            nb = np.maximum(nb, current + 1)
            bucket[improved] = nb
            queue.push(improved, nb)

    stats = {"phases": phases, "relaxations": relaxations,
             "delta": delta}
    return dist, profile, stats
