"""Delta-stepping SSSP (GAP's ``sssp.cc``).

Vertices are kept in distance buckets of width ``delta``; the algorithm
repeatedly settles the lowest non-empty bucket, relaxing *light* edges
(w < delta) iteratively inside the bucket and *heavy* edges once when
the bucket drains.  The paper lists delta among the tunables EPG* leaves
at defaults (Sec. V); for the uniform (0,1] weights of the homogenized
datasets we default to 0.25.

The relaxation loop is vectorized: one round gathers every out-edge of
the current bucket and applies ``np.minimum.at`` -- the count of those
gathered edges is exactly the work the cost model prices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SystemCapabilityError
from repro.machine.threads import WorkProfile
from repro.systems.gap.graph import GapGraph

__all__ = ["delta_stepping", "DEFAULT_DELTA"]

DEFAULT_DELTA = 0.25


def _relax(out, frontier: np.ndarray, dist: np.ndarray,
           light_mask: np.ndarray | None
           ) -> tuple[np.ndarray, int]:
    """Relax the (light or heavy or all) out-edges of ``frontier``.

    Returns (vertices whose distance improved, edges relaxed).
    """
    starts = out.row_ptr[frontier]
    counts = out.row_ptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), 0
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    slots = np.repeat(starts - offsets, counts) + np.arange(total)
    srcs = np.repeat(frontier, counts)
    if light_mask is not None:
        keep = light_mask[slots]
        slots = slots[keep]
        srcs = srcs[keep]
        if slots.size == 0:
            return np.empty(0, dtype=np.int64), total
    dsts = out.col_idx[slots]
    cand = dist[srcs] + out.weights[slots]
    better = cand < dist[dsts]
    dsts_b = dsts[better]
    cand_b = cand[better]
    if dsts_b.size == 0:
        return np.empty(0, dtype=np.int64), total
    np.minimum.at(dist, dsts_b, cand_b)
    return np.unique(dsts_b), total


def delta_stepping(graph: GapGraph, root: int,
                   delta: float = DEFAULT_DELTA
                   ) -> tuple[np.ndarray, WorkProfile, dict]:
    """Return (distances, work profile, stats)."""
    out = graph.out
    if out.weights is None:
        raise SystemCapabilityError("GAP SSSP needs a weighted graph")
    if delta <= 0:
        raise SystemCapabilityError("delta must be positive")
    n = graph.n
    dist = np.full(n, np.inf)
    dist[root] = 0.0
    light = out.weights < delta
    profile = WorkProfile()
    max_deg = float(out.out_degrees().max()) if n else 0.0

    bucket = np.full(n, -1, dtype=np.int64)
    bucket[root] = 0
    relaxations = 0
    phases = 0
    current = 0
    # Upper bound on bucket index given weights <= max weight sum paths.
    while True:
        members = np.flatnonzero(bucket == current)
        if members.size == 0:
            ahead = bucket[bucket > current]
            if ahead.size == 0:
                break
            current = int(ahead.min())
            continue
        settled_this_bucket: list[np.ndarray] = []
        # Light-edge phases: iterate inside the bucket.
        while members.size:
            phases += 1
            improved, examined = _relax(out, members, dist, light)
            relaxations += examined
            # Edge-parallel relaxation: hub skew capped (see bfs.py).
            skew = min(max_deg / max(examined, 1.0), 0.15)
            profile.add_round(units=examined + members.size,
                              memory_bytes=20.0 * examined, skew=skew)
            settled_this_bucket.append(members)
            bucket[members] = -2  # settled (tentatively)
            if improved.size:
                new_bucket = np.minimum(
                    (dist[improved] / delta).astype(np.int64),
                    np.iinfo(np.int64).max)
                stay = new_bucket == current
                bucket[improved] = new_bucket
                members = improved[stay]
            else:
                members = np.empty(0, dtype=np.int64)
        # Heavy-edge phase: once per bucket.
        settled = np.unique(np.concatenate(settled_this_bucket))
        phases += 1
        heavy = ~light
        improved, examined = _relax(out, settled, dist, heavy)
        relaxations += examined
        skew = min(max_deg / max(examined, 1.0), 0.15)
        profile.add_round(units=examined + settled.size,
                          memory_bytes=20.0 * examined, skew=skew)
        if improved.size:
            nb = (dist[improved] / delta).astype(np.int64)
            # Never reopen below the current bucket (weights >= 0).
            bucket[improved] = np.maximum(nb, current + 1)
        current += 1

    stats = {"phases": phases, "relaxations": relaxations,
             "delta": delta}
    return dist, profile, stats
