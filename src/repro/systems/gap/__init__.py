"""GAP Benchmark Suite reimplementation.

"A set of reference implementations for shared memory graph processing
... uses OpenMP to achieve parallelism and uses a CSR representation"
(paper Sec. III-C).  Distinctive features reproduced here:

* direction-optimizing BFS [Beamer et al., SC'12] with the paper's
  default parameters alpha=15, beta=18 (Sec. IV-C notes EPG* runs the
  defaults untuned);
* delta-stepping SSSP;
* PageRank with the homogenized L1 stopping criterion, converging in the
  fewest iterations of all systems (Fig 4);
* both out- and in-adjacency stored (CSR + transpose), so BFS and SSSP
  reuse one construction (Fig 2/3: "the platforms create the same data
  structure for both algorithms");
* serialized ``.sg`` graphs for fast reload.
"""

from repro.systems.gap.system import GapSystem

__all__ = ["GapSystem"]
