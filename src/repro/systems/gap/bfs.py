"""Direction-optimizing BFS (Beamer's algorithm, GAP's ``bfs.cc``).

Alternates between classic top-down frontier expansion and bottom-up
parent search.  The switch heuristics use GAP's tunables:

* go bottom-up when the frontier's outgoing edge count exceeds
  ``edges_from_unexplored / alpha``;
* return top-down when the frontier shrinks below ``n / beta``.

The paper runs the defaults ``alpha=15, beta=18`` and notes (Sec. IV-C)
they are not optimal for every graph -- GraphBIG's plain BFS beats GAP
on dota-league exactly because of this, which our cost accounting
reproduces: bottom-up pays off only when it prunes enough edge
examinations, and the *actual* examined-edge counts are what the cost
model prices.
"""

from __future__ import annotations

import numpy as np

from repro.machine.threads import WorkProfile
from repro.systems.gap.graph import GapGraph

__all__ = ["dobfs", "DEFAULT_ALPHA", "DEFAULT_BETA"]

DEFAULT_ALPHA = 15.0
DEFAULT_BETA = 18.0


def _top_down_step(graph: GapGraph, frontier: np.ndarray,
                   parent: np.ndarray) -> tuple[np.ndarray, int]:
    """Expand the frontier along out-edges; return (next, edges_examined)."""
    out = graph.out
    starts = out.row_ptr[frontier]
    counts = out.row_ptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), 0
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    slots = np.repeat(starts - offsets, counts) + np.arange(total)
    nbrs = out.col_idx[slots]
    srcs = np.repeat(frontier, counts)
    fresh = parent[nbrs] == -1
    nbrs = nbrs[fresh]
    srcs = srcs[fresh]
    if nbrs.size == 0:
        return np.empty(0, dtype=np.int64), total
    order = np.lexsort((srcs, nbrs))
    nbrs_s = nbrs[order]
    srcs_s = srcs[order]
    first = np.ones(nbrs_s.size, dtype=bool)
    first[1:] = nbrs_s[1:] != nbrs_s[:-1]
    new_v = nbrs_s[first]
    parent[new_v] = srcs_s[first]
    return new_v, total


def _bottom_up_step(graph: GapGraph, in_frontier: np.ndarray,
                    parent: np.ndarray) -> tuple[np.ndarray, int]:
    """Each unvisited vertex scans its in-neighbors for a frontier parent.

    Returns (newly visited vertices, edges examined).  The examined
    count honours early exit: a vertex stops scanning at its first
    frontier in-neighbor, which is the entire point of bottom-up.
    """
    inn = graph.inn
    cand = np.flatnonzero(parent == -1)
    if cand.size == 0:
        return np.empty(0, dtype=np.int64), 0
    starts = inn.row_ptr[cand]
    ends = inn.row_ptr[cand + 1]
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), 0
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    slots = np.repeat(starts - offsets, counts) + np.arange(total)
    hits = in_frontier[inn.col_idx[slots]]

    # First hit per segment: positions of hits, bucketed by segment.
    hit_pos = np.flatnonzero(hits)
    if hit_pos.size == 0:
        # No unvisited vertex has a frontier in-neighbor: everyone
        # scanned their whole list for nothing.
        return np.empty(0, dtype=np.int64), total
    seg_end = np.cumsum(counts)
    seg_start = seg_end - counts
    first_idx = np.searchsorted(hit_pos, seg_start)
    has_hit = (first_idx < hit_pos.size)
    first_hit = np.where(has_hit, hit_pos[np.minimum(first_idx,
                                                     hit_pos.size - 1)],
                         -1)
    found = has_hit & (first_hit < seg_end)

    new_v = cand[found]
    parent_slot = slots[first_hit[found]]
    parent[new_v] = inn.col_idx[parent_slot]

    # Early-exit accounting: scanned up to and including the first hit,
    # or the whole list when no frontier neighbor exists.
    examined = np.where(found, first_hit - seg_start + 1, counts)
    return new_v, int(examined.sum())


def dobfs(graph: GapGraph, root: int, alpha: float = DEFAULT_ALPHA,
          beta: float = DEFAULT_BETA
          ) -> tuple[np.ndarray, np.ndarray, WorkProfile, dict]:
    """Run direction-optimizing BFS; return (parent, level, profile, stats)."""
    n = graph.n
    out_deg = graph.out_degree()
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    level[root] = 0
    frontier = np.array([root], dtype=np.int64)
    profile = WorkProfile()
    edges_unexplored = int(out_deg.sum()) - int(out_deg[root])
    depth = 0
    steps: list[str] = []
    bottom_up = False
    max_deg = float(out_deg.max()) if n else 0.0

    while frontier.size:
        depth += 1
        edges_front = int(out_deg[frontier].sum())
        if not bottom_up and edges_front * alpha > max(edges_unexplored, 1):
            bottom_up = True
        elif bottom_up and frontier.size * beta < n:
            bottom_up = False

        if bottom_up:
            mask = np.zeros(n, dtype=bool)
            mask[frontier] = True
            new_v, examined = _bottom_up_step(graph, mask, parent)
            steps.append("bu")
        else:
            new_v, examined = _top_down_step(graph, frontier, parent)
            steps.append("td")

        # GAP parallelizes over *edges* (OpenMP dynamic scheduling over
        # neighbor chunks), so a single hub cannot stall a thread: round
        # skew is capped low regardless of the frontier's degree spread.
        skew = min(max_deg / max(examined, 1.0), 0.15)
        profile.add_round(units=examined + frontier.size,
                          memory_bytes=12.0 * examined, skew=skew)
        level[new_v] = depth
        edges_unexplored -= int(out_deg[new_v].sum())
        frontier = new_v

    stats = {"depth": depth, "steps": "".join(
        "B" if s == "bu" else "T" for s in steps)}
    return parent, level, profile, stats
