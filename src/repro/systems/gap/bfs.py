"""Direction-optimizing BFS (Beamer's algorithm, GAP's ``bfs.cc``).

Alternates between classic top-down frontier expansion and bottom-up
parent search.  The switch heuristics use GAP's tunables:

* go bottom-up when the frontier's outgoing edge count exceeds
  ``edges_from_unexplored / alpha``;
* return top-down when the frontier shrinks below ``n / beta``.

The paper runs the defaults ``alpha=15, beta=18`` and notes (Sec. IV-C)
they are not optimal for every graph -- GraphBIG's plain BFS beats GAP
on dota-league exactly because of this, which our cost accounting
reproduces: bottom-up pays off only when it prunes enough edge
examinations, and the *actual* examined-edge counts are what the cost
model prices.

The per-round hot loops run on :mod:`repro.graph.frontier`: top-down
expansion is :func:`~repro.graph.frontier.gather_slots` +
:func:`~repro.graph.frontier.claim_first_parent` over a byte ``visited``
mask (bit-identical to the old lexsort dedup -- see ``docs/kernels.md``),
bottom-up reuses the same slot expansion for its in-neighbor scan.
"""

from __future__ import annotations

import numpy as np

from repro.graph.frontier import Frontier, claim_first_parent, gather_slots
from repro.graph.scratch import KernelScratch, scratch_for
from repro.machine.threads import WorkProfile
from repro.systems.gap.graph import GapGraph

__all__ = ["dobfs", "DEFAULT_ALPHA", "DEFAULT_BETA"]

DEFAULT_ALPHA = 15.0
DEFAULT_BETA = 18.0


def _top_down_step(graph: GapGraph, frontier: np.ndarray,
                   parent: np.ndarray, visited: np.ndarray,
                   scratch: KernelScratch) -> tuple[np.ndarray, int]:
    """Expand the frontier along out-edges; return (next, edges_examined)."""
    out = graph.out
    gs = gather_slots(out.row_ptr, frontier, scratch)
    if gs.total == 0:
        return np.empty(0, dtype=np.int64), 0
    nbrs = out.col_idx[gs.slots]
    srcs = np.repeat(frontier, gs.counts)
    # Claiming over the *unfiltered* edges is equivalent to the old
    # fresh-filter + lexsort: a still-unvisited target keeps all of its
    # frontier edges, so the minimum source is unchanged.
    new_v = claim_first_parent(nbrs, srcs, visited, parent, scratch)
    return new_v, gs.total


def _bottom_up_step(graph: GapGraph, in_frontier: np.ndarray,
                    parent: np.ndarray, visited: np.ndarray,
                    scratch: KernelScratch) -> tuple[np.ndarray, int]:
    """Each unvisited vertex scans its in-neighbors for a frontier parent.

    Returns (newly visited vertices, edges examined).  The examined
    count honours early exit: a vertex stops scanning at its first
    frontier in-neighbor, which is the entire point of bottom-up.
    """
    inn = graph.inn
    cand = np.flatnonzero(~visited)
    if cand.size == 0:
        return np.empty(0, dtype=np.int64), 0
    gs = gather_slots(inn.row_ptr, cand, scratch)
    if gs.total == 0:
        return np.empty(0, dtype=np.int64), 0
    counts = gs.counts
    slots = gs.slots
    hits = in_frontier[inn.col_idx[slots]]

    # First hit per segment: positions of hits, bucketed by segment.
    hit_pos = np.flatnonzero(hits)
    if hit_pos.size == 0:
        # No unvisited vertex has a frontier in-neighbor: everyone
        # scanned their whole list for nothing.
        return np.empty(0, dtype=np.int64), gs.total
    seg_start = gs.offsets
    seg_end = seg_start + counts
    first_idx = np.searchsorted(hit_pos, seg_start)
    has_hit = (first_idx < hit_pos.size)
    first_hit = np.where(has_hit, hit_pos[np.minimum(first_idx,
                                                     hit_pos.size - 1)],
                         -1)
    found = has_hit & (first_hit < seg_end)

    new_v = cand[found]
    parent_slot = slots[first_hit[found]]
    parent[new_v] = inn.col_idx[parent_slot]
    visited[new_v] = True

    # Early-exit accounting: scanned up to and including the first hit,
    # or the whole list when no frontier neighbor exists.
    examined = np.where(found, first_hit - seg_start + 1, counts)
    return new_v, int(examined.sum())


def dobfs(graph: GapGraph, root: int, alpha: float = DEFAULT_ALPHA,
          beta: float = DEFAULT_BETA
          ) -> tuple[np.ndarray, np.ndarray, WorkProfile, dict]:
    """Run direction-optimizing BFS; return (parent, level, profile, stats)."""
    n = graph.n
    out_deg = graph.out_degree()
    scratch = scratch_for(graph, n, graph.out.n_edges)
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    parent[root] = root
    level[root] = 0
    visited[root] = True
    front = Frontier(n, scratch, np.array([root], dtype=np.int64))
    profile = WorkProfile()
    edges_unexplored = int(out_deg.sum()) - int(out_deg[root])
    depth = 0
    steps: list[str] = []
    bottom_up = False
    max_deg = float(out_deg.max()) if n else 0.0

    while front:
        depth += 1
        frontier = front.as_ids()
        edges_front = int(out_deg[frontier].sum())
        if not bottom_up and edges_front * alpha > max(edges_unexplored, 1):
            bottom_up = True
        elif bottom_up and front.size * beta < n:
            bottom_up = False

        if bottom_up:
            new_v, examined = _bottom_up_step(graph, front.as_mask(),
                                              parent, visited, scratch)
            steps.append("bu")
        else:
            new_v, examined = _top_down_step(graph, frontier, parent,
                                             visited, scratch)
            steps.append("td")

        # GAP parallelizes over *edges* (OpenMP dynamic scheduling over
        # neighbor chunks), so a single hub cannot stall a thread: round
        # skew is capped low regardless of the frontier's degree spread.
        skew = min(max_deg / max(examined, 1.0), 0.15)
        profile.add_round(units=examined + front.size,
                          memory_bytes=12.0 * examined, skew=skew)
        level[new_v] = depth
        edges_unexplored -= int(out_deg[new_v].sum())
        front.replace(new_v)

    front.release()
    stats = {"depth": depth, "steps": "".join(
        "B" if s == "bu" else "T" for s in steps)}
    return parent, level, profile, stats
