"""GAP connected components (Shiloach-Vishkin style hook + compress).

GAP ships a components benchmark (``cc.cc``); EPG* does not time it in
the paper's figures, but the harness exposes it so users can extend the
comparison (the framework "is not specific to a particular algorithm",
Sec. III-D).  Labels follow the Graphalytics convention: component id is
the smallest member vertex id.
"""

from __future__ import annotations

import numpy as np

from repro.machine.threads import WorkProfile
from repro.systems.gap.graph import GapGraph

__all__ = ["shiloach_vishkin", "afforest", "DEFAULT_NEIGHBOR_ROUNDS"]

DEFAULT_NEIGHBOR_ROUNDS = 2


def shiloach_vishkin(graph: GapGraph
                     ) -> tuple[np.ndarray, int, WorkProfile]:
    """Return (labels, rounds, profile)."""
    n = graph.n
    out = graph.out
    src = out.source_ids()
    dst = out.col_idx
    m = src.size
    comp = np.arange(n, dtype=np.int64)
    profile = WorkProfile()
    rounds = 0
    while True:
        rounds += 1
        # Hook: every edge pulls both endpoints to the smaller label.
        low = np.minimum(comp[src], comp[dst])
        new_comp = comp.copy()
        np.minimum.at(new_comp, src, low)
        np.minimum.at(new_comp, dst, low)
        # Compress: pointer-jump labels toward the roots.
        new_comp = new_comp[new_comp]
        profile.add_round(units=2.0 * m + n, memory_bytes=24.0 * m,
                          skew=0.05)
        if np.array_equal(new_comp, comp):
            break
        comp = new_comp
    # Labels are already minima under this hook rule once stable.
    return comp, rounds, profile


def _root_hook_round(comp: np.ndarray, s: np.ndarray, d: np.ndarray,
                     profile: WorkProfile, n: int) -> int:
    """Min-hook the *roots* of the endpoint labels, compress, repeat.

    Hooking ``comp[high]`` (not ``comp[s]``) lets a smaller label
    absorb a whole already-merged set in one compression; iterated to a
    fixpoint the labels become the minimum member id per component
    spanned by ``(s, d)`` -- the Graphalytics convention, for free.
    Returns the number of hook rounds run.
    """
    rounds = 0
    while True:
        rounds += 1
        ls = comp[s]
        ld = comp[d]
        diff = ls != ld
        profile.add_round(units=float(2.0 * s.size + n),
                          memory_bytes=24.0 * s.size, skew=0.05)
        if not diff.any():
            return rounds
        low = np.minimum(ls[diff], ld[diff])
        high = np.maximum(ls[diff], ld[diff])
        np.minimum.at(comp, high, low)
        while True:
            nxt = comp[comp]
            if np.array_equal(nxt, comp):
                break
            comp[:] = nxt


def afforest(graph: GapGraph,
             neighbor_rounds: int = DEFAULT_NEIGHBOR_ROUNDS
             ) -> tuple[np.ndarray, int, WorkProfile]:
    """Afforest components: sampled hooks, then skip the giant.

    GAP's faster components benchmark (Sutton et al.): a couple of
    rounds hooking each vertex through its r-th out-neighbor only
    collapse most of a skewed graph into one giant component; the full
    edge list is then walked only where an endpoint still lies outside
    it.  Returns (labels, rounds, profile); labels are minimum member
    ids, exactly matching :func:`shiloach_vishkin`'s output.
    """
    n = graph.n
    out = graph.out
    comp = np.arange(n, dtype=np.int64)
    profile = WorkProfile()
    if n == 0 or out.n_edges == 0:
        profile.add_round(units=float(n), memory_bytes=8.0 * n, skew=0.0)
        return comp, 0, profile
    src = out.source_ids()
    dst = out.col_idx
    deg = np.diff(out.row_ptr)
    rounds = 0
    for r in range(neighbor_rounds):
        sampled = np.flatnonzero(deg > r)
        if sampled.size == 0:
            break
        rounds += _root_hook_round(
            comp, sampled, dst[out.row_ptr[sampled] + r], profile, n)
    giant = int(np.bincount(comp, minlength=n).argmax())
    rest = (comp[src] != giant) | (comp[dst] != giant)
    profile.add_round(units=float(src.size + n),
                      memory_bytes=16.0 * src.size, skew=0.05)
    if rest.any():
        rounds += _root_hook_round(comp, src[rest], dst[rest], profile, n)
    return comp, rounds, profile
