"""GAP connected components (Shiloach-Vishkin style hook + compress).

GAP ships a components benchmark (``cc.cc``); EPG* does not time it in
the paper's figures, but the harness exposes it so users can extend the
comparison (the framework "is not specific to a particular algorithm",
Sec. III-D).  Labels follow the Graphalytics convention: component id is
the smallest member vertex id.
"""

from __future__ import annotations

import numpy as np

from repro.machine.threads import WorkProfile
from repro.systems.gap.graph import GapGraph

__all__ = ["shiloach_vishkin"]


def shiloach_vishkin(graph: GapGraph
                     ) -> tuple[np.ndarray, int, WorkProfile]:
    """Return (labels, rounds, profile)."""
    n = graph.n
    out = graph.out
    src = out.source_ids()
    dst = out.col_idx
    m = src.size
    comp = np.arange(n, dtype=np.int64)
    profile = WorkProfile()
    rounds = 0
    while True:
        rounds += 1
        # Hook: every edge pulls both endpoints to the smaller label.
        low = np.minimum(comp[src], comp[dst])
        new_comp = comp.copy()
        np.minimum.at(new_comp, src, low)
        np.minimum.at(new_comp, dst, low)
        # Compress: pointer-jump labels toward the roots.
        new_comp = new_comp[new_comp]
        profile.add_round(units=2.0 * m + n, memory_bytes=24.0 * m,
                          skew=0.05)
        if np.array_equal(new_comp, comp):
            break
        comp = new_comp
    # Labels are already minima under this hook rule once stable.
    return comp, rounds, profile
