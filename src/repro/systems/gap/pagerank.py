"""GAP PageRank: blocked forward sweeps with the homogenized L1 stop.

Stopping criterion (paper Sec. III-D): iterate until
``sum_k |p_k^(i) - p_k^(i-1)| < epsilon`` with ``epsilon = 6e-8``.

Reproduction note -- why GAP needs the fewest iterations (Fig 4): GAP's
pull-direction kernel sweeps vertices in index order, and this
implementation models that as a *block Gauss-Seidel*: vertices are
processed in ``n_blocks`` ordered chunks, each chunk pulling from ranks
that earlier chunks already updated this sweep.  Using fresh values
within a sweep accelerates convergence over the pure Jacobi sweeps of
GraphBIG/GraphMat/PowerGraph, yielding the iteration ordering the paper
observes without touching the stopping criterion.
"""

from __future__ import annotations

import numpy as np

from repro.machine.threads import WorkProfile
from repro.systems.gap.graph import GapGraph

__all__ = ["pagerank_gs", "DEFAULT_EPSILON", "DEFAULT_DAMPING"]

DEFAULT_EPSILON = 6e-8
DEFAULT_DAMPING = 0.85
DEFAULT_MAX_ITERATIONS = 1000
DEFAULT_N_BLOCKS = 8


def pagerank_gs(graph: GapGraph, damping: float = DEFAULT_DAMPING,
                epsilon: float = DEFAULT_EPSILON,
                max_iterations: int = DEFAULT_MAX_ITERATIONS,
                n_blocks: int = DEFAULT_N_BLOCKS
                ) -> tuple[np.ndarray, int, WorkProfile]:
    """Return (ranks, iterations, profile)."""
    n = graph.n
    inn = graph.inn
    out_deg = graph.out_degree().astype(np.float64)
    dangling = out_deg == 0
    inv_out = np.zeros(n)
    nz = ~dangling
    inv_out[nz] = 1.0 / out_deg[nz]

    rank = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    profile = WorkProfile()
    bounds = np.linspace(0, n, n_blocks + 1).astype(np.int64)
    nnz = inn.n_edges

    for it in range(1, max_iterations + 1):
        old = rank.copy()
        dangling_mass = rank[dangling].sum() / n
        for b in range(n_blocks):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            if hi <= lo:
                continue
            seg_lo = inn.row_ptr[lo]
            seg_hi = inn.row_ptr[hi]
            srcs = inn.col_idx[seg_lo:seg_hi]
            # Pull contributions using *current* rank: blocks already
            # swept this iteration contribute their fresh values.
            contrib = np.zeros(hi - lo)
            rows = np.repeat(
                np.arange(lo, hi, dtype=np.int64),
                np.diff(inn.row_ptr[lo:hi + 1]))
            np.add.at(contrib, rows - lo, rank[srcs] * inv_out[srcs])
            rank[lo:hi] = base + damping * (contrib + dangling_mass)
        # GAP renormalizes each sweep, keeping the probability mass exact
        # (Gauss-Seidel updates do not conserve it mid-stream).
        rank /= rank.sum()
        delta = float(np.abs(rank - old).sum())
        profile.add_round(units=nnz + n, memory_bytes=20.0 * nnz + 16.0 * n,
                          skew=0.05)
        if delta < epsilon:
            return rank, it, profile
    return rank, max_iterations, profile
