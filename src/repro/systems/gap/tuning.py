"""Heuristic parameter tuning for GAP's tunable kernels.

Paper Sec. V: "Advances in parallel SSSP and BFS contain
parameterizations (Delta for SSSP and alpha and beta for BFS) which
affects performance depending on graph structure ... We plan to add
some level of heuristic parameter tuning as performed in [Beamer'12] to
the next iteration of our framework."  This module is that next
iteration: degree-distribution heuristics that pick alpha/beta/delta per
graph, plus a small empirical sweep utility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.systems.gap.graph import GapGraph

__all__ = ["TunedParameters", "heuristic_parameters", "sweep_alpha_beta"]


@dataclass(frozen=True)
class TunedParameters:
    alpha: float
    beta: float
    delta: float
    rationale: str


def heuristic_parameters(graph: GapGraph) -> TunedParameters:
    """Pick DO-BFS and delta-stepping parameters from graph shape.

    Rules distilled from Beamer et al.:

    * low-diameter, high-density graphs benefit from switching to
      bottom-up *early* and staying there (the switch condition is
      ``m_f > m_u / alpha``, so a *large* alpha switches sooner; a large
      beta -- return condition ``n_f < n / beta`` -- returns later).
      dota-league's 824-average-degree is the paper's example of GAP's
      defaults misfiring;
    * high-diameter sparse graphs (road-like, citation chains) should
      rarely go bottom-up (alpha below 1 effectively disables it);
    * delta should approximate (average weight) * (average degree) /
      2 so each bucket settles a healthy frontier.
    """
    deg = graph.out_degree().astype(np.float64)
    n = max(graph.n, 1)
    avg_deg = float(deg.mean()) if n else 0.0
    skew = float(deg.max() / max(avg_deg, 1e-12)) if n else 0.0
    density = avg_deg / n

    if avg_deg >= 100 or density >= 0.1:
        alpha, beta = 64.0, 64.0
        rationale = "dense graph: switch bottom-up early, stay longer"
    elif skew >= 20:
        alpha, beta = 15.0, 18.0
        rationale = "scale-free graph: Beamer defaults"
    else:
        alpha, beta = 0.25, 4.0
        rationale = "sparse low-skew graph: avoid bottom-up"

    if graph.out.weights is not None and graph.out.n_edges:
        avg_w = float(graph.out.weights.mean())
        delta = max(avg_w * avg_deg / 2.0, avg_w)
    else:
        delta = 0.25
    return TunedParameters(alpha=alpha, beta=beta, delta=delta,
                           rationale=rationale)


def sweep_alpha_beta(system, loaded, root: int,
                     alphas=(1.0, 4.0, 15.0, 60.0),
                     betas=(4.0, 18.0, 64.0)) -> dict:
    """Empirically sweep (alpha, beta); return simulated times per pair.

    ``system`` must be a :class:`~repro.systems.gap.system.GapSystem`;
    the sweep runs the real kernel for each setting, so the returned
    times reflect the actual examined-edge differences.
    """
    results: dict[tuple[float, float], float] = {}
    for a in alphas:
        for b in betas:
            res = system.run(loaded, "bfs", root=root, alpha=a, beta=b)
            results[(a, b)] = res.time_s
    return results
