"""GAP k-core decomposition (bucket-queue peeling).

GAP's peeling benchmarks process vertices in nondecreasing residual
degree; the hot structure is the same lazy
:class:`~repro.graph.frontier.BucketQueue` delta-stepping uses --
decrease-key is a re-push, stale entries die on pop.  Each round peels
an entire minimum bucket and decrements only the touched neighborhoods
(never an ``O(n)`` rescan), which is the advantage
``benchmarks/bench_algorithms.py`` gates at >=2x.

Core numbers are computed on the simple undirected view
(:mod:`repro.graph.simple`) and are mathematically unique, so this must
agree exactly with every other system's implementation.
"""

from __future__ import annotations

import numpy as np

from repro.graph.frontier import BucketQueue, gather_slots
from repro.graph.scratch import scratch_for
from repro.graph.simple import simple_undirected_view
from repro.machine.threads import WorkProfile
from repro.systems.gap.graph import GapGraph

__all__ = ["kcore_peel"]


def kcore_peel(graph: GapGraph) -> tuple[np.ndarray, int, dict]:
    """Return (core numbers, rounds, stats dict with profile)."""
    n = graph.n
    out = graph.out
    view = simple_undirected_view(out.source_ids(), out.col_idx, n)
    profile = WorkProfile()
    # Simplification pass: one sweep over the arcs plus the row build.
    profile.add_round(units=float(out.n_edges + n),
                      memory_bytes=16.0 * out.n_edges, skew=0.05)
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core, 0, {"profile": profile, "max_core": 0}
    scratch = scratch_for(graph, n, max(out.n_edges, view.nnz))
    deg = view.degrees.copy()
    key = deg.copy()
    queue = BucketQueue()
    queue.push(np.arange(n, dtype=np.int64), key)
    max_deg = float(deg.max()) if n else 0.0
    level = 0
    rounds = 0
    while True:
        head = queue.pop(key)
        if head is None:
            break
        k, members = head
        rounds += 1
        level = max(level, k)
        core[members] = level
        key[members] = -1
        gs = gather_slots(view.indptr, members, scratch)
        profile.add_round(units=float(gs.total + members.size),
                          memory_bytes=24.0 * gs.total,
                          skew=min(max_deg / max(gs.total, 1.0), 0.2))
        if gs.total == 0:
            continue
        nbrs = view.indices[gs.slots]
        nbrs = nbrs[key[nbrs] >= 0]
        if nbrs.size == 0:
            continue
        ids, cnt = np.unique(nbrs, return_counts=True)
        # Clamping at the current level keeps pushed keys monotone, so
        # a batch pop equals vertex-at-a-time Matula-Beck.
        new_deg = np.maximum(deg[ids] - cnt, level)
        deg[ids] = new_deg
        key[ids] = new_deg
        queue.push(ids, new_deg)
    return core, rounds, {"profile": profile, "max_core": int(level)}
