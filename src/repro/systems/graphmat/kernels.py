"""GraphMat kernels: vertex programs lowered to generalized SpMV.

Each iteration is one SpMV over the appropriate semiring on the DCSR
transpose adjacency, followed by an O(n) apply step -- the
bulk-synchronous structure GraphMat's engine executes.  Work units per
iteration therefore count the nnz touched *plus* a full-vector term,
which is exactly the overhead that makes GraphMat uncompetitive on
small graphs (Sec. IV-A) while scaling beautifully (Fig 5).
"""

from __future__ import annotations

import numpy as np

from repro.graph.dcsr import DCSRMatrix
from repro.graph.frontier import gather_slots
from repro.graph.scratch import scratch_for
from repro.machine.threads import WorkProfile

__all__ = ["bfs_spmv", "sssp_bellman_spmv", "pagerank_float32",
           "wcc_minplus", "cdlp_spmv", "lcc_spmv",
           "kcore_spmv", "mis_spmv", "simple_pattern_matrix"]


def _active_nnz(at: DCSRMatrix, active_mask: np.ndarray) -> float:
    """nnz of the columns selected by ``active_mask`` (the work a masked
    SpMV performs when the frontier is sparse)."""
    # Column-count view: at holds A^T, so columns of A^T = rows of A.
    return float(active_mask[at.col_idx].sum())


def bfs_spmv(at: DCSRMatrix, out_degrees: np.ndarray, root: int):
    """BFS as repeated OR-AND SpMV with a visited mask."""
    n = at.n
    scratch = scratch_for(at, n, at.nnz)
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    level[root] = 0
    visited = np.zeros(n, dtype=bool)
    visited[root] = True
    frontier = np.zeros(n, dtype=bool)
    frontier[root] = True
    profile = WorkProfile()
    depth = 0
    max_deg = float(out_degrees.max()) if n else 0.0

    while frontier.any():
        depth += 1
        touched = _active_nnz(at, frontier)
        reached = at.spmv_or_and(frontier)
        new = reached & ~visited
        profile.add_round(units=touched + n,
                          memory_bytes=9.0 * touched + 2.0 * n,
                          skew=min(max_deg / max(touched, 1.0), 1.0))
        if not new.any():
            break
        # Parent assignment: lowest frontier in-neighbor (apply step).
        # Every new vertex was reached through an in-edge, so its row is
        # stored (DCSR keeps non-empty rows only) and its segment in the
        # shared slot expansion is non-empty.
        new_ids = np.flatnonzero(new)
        rows = np.searchsorted(at.row_ids, new_ids)
        gs = gather_slots(at.row_ptr, rows, scratch)
        nbrs = at.col_idx[gs.slots]
        # Non-frontier neighbors get an n sentinel; every new vertex has
        # at least one frontier in-neighbor, so the minimum is valid.
        vals = np.where(frontier[nbrs], nbrs, n)
        parent[new_ids] = np.minimum.reduceat(vals, gs.offsets)
        level[new_ids] = depth
        visited |= new
        frontier = new
    return parent, level, profile, {"depth": depth}


def sssp_bellman_spmv(at: DCSRMatrix, root: int):
    """SSSP as min-plus SpMV iterations with an active mask."""
    n = at.n
    dist = np.full(n, np.inf)
    dist[root] = 0.0
    active = np.zeros(n, dtype=bool)
    active[root] = True
    profile = WorkProfile()
    iterations = 0
    while active.any():
        iterations += 1
        touched = _active_nnz(at, active)
        masked = np.where(active, dist, np.inf)
        cand = at.spmv_min_plus(masked)
        improved = cand < dist
        profile.add_round(units=touched + n,
                          memory_bytes=20.0 * touched + 8.0 * n,
                          skew=0.15)
        if not improved.any():
            break
        dist = np.where(improved, cand, dist)
        active = improved
    return dist, profile, {"iterations": iterations}


def pagerank_float32(at: DCSRMatrix, out_degrees: np.ndarray,
                     damping: float, max_iterations: int):
    """GraphMat PageRank: float32, stop when no rank visibly changes.

    "GraphMat continues to run until none of the vertices' ranks change
    ... effectively its stopping criterion requires the infinity-norm be
    less than machine epsilon" (Fig 4 caption + Sec. IV-A).  Concretely:
    ranks are single precision, and the vertex program's apply step only
    *stores* a new rank when it differs from the old one by at least a
    single-precision ulp (write-if-changed -- the vertex-program idiom
    that also drives the engine's convergence detection).  The engine
    stops when a sweep stores nothing.  Freezing is monotone (a frozen
    state reproduces itself exactly), so no float32 limit cycles, and
    reaching per-vertex relative deltas below ~1.2e-7 takes far more
    sweeps than the homogenized L1 < 6e-8 criterion the other systems
    use -- the Fig 4 iteration gap.
    """
    n = at.n
    out_deg = out_degrees.astype(np.float32)
    dangling = out_deg == 0
    inv_out = np.zeros(n, dtype=np.float32)
    inv_out[~dangling] = np.float32(1.0) / out_deg[~dangling]
    rank = np.full(n, np.float32(1.0 / n), dtype=np.float32)
    base = np.float32((1.0 - damping) / n)
    d32 = np.float32(damping)
    flt_eps = np.float32(np.finfo(np.float32).eps)
    nnz = at.nnz
    profile = WorkProfile()
    iterations = max_iterations
    for it in range(1, max_iterations + 1):
        contrib = at.spmv_plus_times((rank * inv_out).astype(np.float32),
                                     pattern_only=True)
        dangling_mass = np.float32(rank[dangling].sum() / n)
        new_rank = (base + d32 * (contrib.astype(np.float32)
                                  + dangling_mass)).astype(np.float32)
        # Write-if-changed: drop sub-ulp updates (relative to the stored
        # value) instead of storing them.
        changed = np.abs(new_rank - rank) > flt_eps * np.abs(rank)
        profile.add_round(units=nnz + n,
                          memory_bytes=12.0 * nnz + 12.0 * n, skew=0.05)
        if not changed.any():
            iterations = it
            break
        rank = np.where(changed, new_rank, rank)
    return rank.astype(np.float64), iterations, profile


def wcc_minplus(at: DCSRMatrix):
    """Connected components as min-selection SpMV until fixpoint.

    Uses the symmetrized pattern implied by running on both A^T and the
    apply step keeping the running minimum, so directed inputs still
    produce *weak* components (GraphMat's CC vertex program gathers
    along in- and out-edges; callers pass the symmetrized matrix)."""
    n = at.n
    labels = np.arange(n, dtype=np.float64)
    profile = WorkProfile()
    nnz = at.nnz
    rounds = 0
    while True:
        rounds += 1
        gathered = at.spmv_min_plus(labels)  # values are 0 -> min gather
        new_labels = np.minimum(labels, gathered)
        profile.add_round(units=nnz + n,
                          memory_bytes=16.0 * nnz + 8.0 * n, skew=0.05)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return labels.astype(np.int64), rounds, profile


def cdlp_spmv(at: DCSRMatrix, iterations: int):
    """CDLP: the mode-of-neighbor-labels step does not fit a semiring,
    so GraphMat's vertex program materializes per-vertex label
    multisets -- reflected here in the heavy per-iteration anchor."""
    from repro.algorithms.cdlp import propagate_labels_once

    n = at.n
    src = at.col_idx          # A^T entries: (row=dst, col=src) of A
    dst = at.row_sources()
    labels = np.arange(n, dtype=np.int64)
    nnz = at.nnz
    profile = WorkProfile()
    for _ in range(iterations):
        labels = propagate_labels_once(src, dst, labels, n)
        profile.add_round(units=nnz + n, memory_bytes=40.0 * nnz,
                          skew=0.08)
    return labels, iterations, profile


def simple_pattern_matrix(at: DCSRMatrix) -> DCSRMatrix:
    """Simple undirected pattern DCSR for the structural kernels.

    ``at_sym`` keeps self-loops and duplicate arcs (GraphMat stores the
    matrix as given), but k-core and MIS are defined on the *simple*
    view -- so those vertex programs start from a loop-free,
    deduplicated, symmetric pattern matrix.  No values are attached:
    zero-valued entries make ``spmv_min_plus`` a pure min-gather and
    ``pattern_only`` SpMVs count neighbors.
    """
    from repro.graph.csr import CSRGraph
    from repro.graph.simple import simple_undirected_view

    view = simple_undirected_view(at.row_sources(), at.col_idx, at.n)
    u_src, u_dst = view.to_edge_arrays()
    # Symmetric pattern: the matrix is its own transpose.
    return DCSRMatrix.from_csr(CSRGraph.from_arrays(u_src, u_dst, at.n))


def kcore_spmv(at: DCSRMatrix):
    """k-core as repeated degree-count SpMV plus a threshold apply.

    Every superstep recounts live degrees with one ``pattern_only``
    SpMV over the live mask and peels everything at or under the
    current level in the apply step -- full-sweep bulk-synchronous, the
    GraphMat shape (no bucket queue; the ``n``-term per sweep is what
    the calibration prices).  Produces the unique Matula-Beck core
    numbers, bit-identical to the peeling systems.
    """
    und = simple_pattern_matrix(at)
    n = at.n
    profile = WorkProfile()
    profile.add_round(units=at.nnz + n, memory_bytes=16.0 * at.nnz,
                      skew=0.05)
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core, 0, profile
    nnz = und.nnz
    alive = np.ones(n, dtype=bool)
    remaining = n
    level = 0
    supersteps = 0
    cur_deg = und.spmv_plus_times(alive.astype(np.float64),
                                  pattern_only=True)
    while remaining:
        level = max(level, int(cur_deg[alive].min()))
        while True:
            supersteps += 1
            peel = alive & (cur_deg <= level)
            profile.add_round(units=_active_nnz(und, alive) + n,
                              memory_bytes=12.0 * nnz + 8.0 * n,
                              skew=0.05)
            if not peel.any():
                break
            core[peel] = level
            alive[peel] = False
            remaining -= int(peel.sum())
            if remaining == 0:
                break
            cur_deg = und.spmv_plus_times(alive.astype(np.float64),
                                          pattern_only=True)
    return core, supersteps, profile


def mis_spmv(at: DCSRMatrix, priorities: np.ndarray):
    """MIS as min-gather SpMV rounds with an OR-AND knockout step.

    One ``spmv_min_plus`` over the masked priority vector finds each
    vertex's best undecided neighbor (empty rows gather ``inf``, so
    isolated or fully-decided neighborhoods win outright); one
    ``spmv_or_and`` over the winner mask retires their neighbors.
    Shared seeded priorities pin the unique greedy result.
    """
    und = simple_pattern_matrix(at)
    n = at.n
    profile = WorkProfile()
    profile.add_round(units=at.nnz + n, memory_bytes=16.0 * at.nnz,
                      skew=0.05)
    in_set = np.zeros(n, dtype=bool)
    if n == 0:
        return in_set, 0, profile
    pr = np.asarray(priorities, dtype=np.float64)
    decided = np.zeros(n, dtype=bool)
    nnz = und.nnz
    rounds = 0
    while not decided.all():
        rounds += 1
        masked = np.where(decided, np.inf, pr)
        best = und.spmv_min_plus(masked)
        winners = ~decided & (pr < best)
        in_set |= winners
        reached = und.spmv_or_and(winners)
        decided |= winners | reached
        profile.add_round(units=2.0 * nnz + n,
                          memory_bytes=20.0 * nnz + 8.0 * n, skew=0.05)
    return in_set, rounds, profile


def lcc_spmv(at: DCSRMatrix, batch_rows: int | None = None):
    """LCC via masked sparse-matrix products (SpGEMM on the pattern).

    ``batch_rows`` (default: min(2048, n)) is the row-tile width;
    out-of-range values raise ``ConfigError``.
    """
    import scipy.sparse as sp

    from repro.graph.frontier import resolve_batch_rows

    n = at.n
    batch_rows = resolve_batch_rows(batch_rows, n)
    # Reconstruct the directed adjacency A from its stored transpose.
    src = at.row_sources()
    dst = at.col_idx
    keep = src != dst
    a_dir = sp.csr_matrix(
        (np.ones(int(keep.sum()), dtype=np.int64),
         (dst[keep], src[keep])), shape=(n, n))
    a_dir.sum_duplicates()
    a_dir.data[:] = 1
    und = a_dir + a_dir.T
    und.data[:] = 1
    und.sum_duplicates()
    und.data[:] = 1
    und = und.tocsr()
    deg = np.asarray(und.sum(axis=1)).ravel().astype(np.float64)

    tri = np.zeros(n, dtype=np.float64)
    profile = WorkProfile()
    wedge_weights = deg * (deg - 1)
    for lo in range(0, n, batch_rows):
        hi = min(lo + batch_rows, n)
        block = (und[lo:hi] @ a_dir).multiply(und[lo:hi])
        tri[lo:hi] = np.asarray(block.sum(axis=1)).ravel()
        units = float(wedge_weights[lo:hi].sum()) + (hi - lo)
        profile.add_round(units=units, memory_bytes=8.0 * units, skew=0.3)

    out = np.zeros(n, dtype=np.float64)
    mask = wedge_weights > 0
    out[mask] = tri[mask] / wedge_weights[mask]
    return out, profile, {"wedges": float(wedge_weights.sum())}
