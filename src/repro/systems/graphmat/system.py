"""GraphMat system wrapper: DCSR matrices, phase-structured execution.

Every ``run`` reproduces GraphMat's phase sequence -- the one the
paper's Table I excerpt shows for PageRank on dota-league::

    Finished file read of dota-league. time: 2.65211
    load graph: 5.91229 sec
    initialize engine: 8.32081e-05 sec
    run algorithm 1 (count degree): 0.0555639 sec
    run algorithm 2 (compute PageRank): 0.149445 sec
    print output: 0.0641179 sec
    deinitialize engine: 0.00022006 sec

EPG* times only "run algorithm 2"; Graphalytics' GraphMat platform
driver wraps the whole process -- the unfairness Sec. II dissects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets import formats
from repro.datasets.homogenize import HomogenizedDataset
from repro.graph.csr import CSRGraph
from repro.graph.dcsr import DCSRMatrix
from repro.graph.edgelist import EdgeList
from repro.machine.threads import WorkProfile
from repro.systems import calibration
from repro.systems.base import GraphSystem
from repro.systems.graphmat import kernels

__all__ = ["GraphMatSystem", "GraphMatMatrices"]

#: Algorithm names as they appear in GraphMat's own log lines.
_ALGO_LOG_NAMES = {
    "bfs": "compute BFS",
    "sssp": "compute SSSP",
    "pagerank": "compute PageRank",
    "wcc": "compute Connected Components",
    "cdlp": "compute Label Propagation",
    "lcc": "compute Triangle Counting",
    "kcore": "compute KCore",
    "mis": "compute MIS",
}


@dataclass
class GraphMatMatrices:
    """GraphMat's graph: DCSR transpose (pull direction) + degrees."""

    at: DCSRMatrix          # A^T with weights
    at_sym: DCSRMatrix      # symmetrized pattern (for WCC)
    out_degrees: np.ndarray
    n: int

    @property
    def n_arcs(self) -> int:
        return self.at.nnz

    def nbytes(self) -> int:
        """Both DCSR matrices plus the degree cache."""
        return (self.at.nbytes() + self.at_sym.nbytes()
                + self.out_degrees.nbytes)


@dataclass
class GraphMatPhases:
    """Per-run phase timings for the native log."""

    file_read_s: float = 0.0
    load_graph_s: float = 0.0
    init_engine_s: float = 8.32e-5
    count_degree_s: float = 0.0
    run_algorithm_s: float = 0.0
    print_output_s: float = 0.0
    deinit_engine_s: float = 2.2e-4
    algorithm_label: str = ""
    extra: dict = field(default_factory=dict)


class GraphMatSystem(GraphSystem):
    """GraphMat (Sec. III-C item 4)."""

    name = "graphmat"
    provides = frozenset({"bfs", "sssp", "pagerank", "wcc", "cdlp", "lcc",
                          "kcore", "mis"})
    separable_construction = True
    input_key = "mtxbin"

    # -- loading -------------------------------------------------------
    def _read_input(self, dataset: HomogenizedDataset) -> EdgeList:
        return formats.read_graphmat_bin(
            dataset.path("mtxbin"), directed=dataset.directed,
            name=dataset.name)

    def _build(self, edges: EdgeList, dataset: HomogenizedDataset):
        profile = WorkProfile()
        el = edges if dataset.directed else edges.symmetrized()
        m = el.n_edges
        n = el.n_vertices
        # GraphMat partitions the matrix into tiles then doubly
        # compresses each: two sorting passes plus the tile build.
        profile.add_round(units=m, memory_bytes=24.0 * m, skew=0.05)
        csr_t = CSRGraph.from_arrays(el.dst, el.src, n, weights=el.weights)
        at = DCSRMatrix.from_csr(csr_t)
        profile.add_round(units=m, memory_bytes=24.0 * m, skew=0.05)
        # Symmetrized pattern for CC.
        sym = el.symmetrized() if dataset.directed else el
        csr_sym = CSRGraph.from_arrays(sym.dst, sym.src, n)
        at_sym = DCSRMatrix.from_csr(csr_sym)
        profile.add_round(units=sym.n_edges, memory_bytes=16.0 * sym.n_edges,
                          skew=0.05)
        out_deg = np.bincount(el.src, minlength=n)
        return GraphMatMatrices(at=at, at_sym=at_sym, out_degrees=out_deg,
                                n=n), profile

    def _n_arcs(self, data: GraphMatMatrices) -> int:
        return data.n_arcs

    # -- artifact cache ------------------------------------------------
    def _pack_data(self, data: GraphMatMatrices):
        arrays = {"out_degrees": data.out_degrees}
        arrays.update(data.at.to_arrays_map("at_"))
        arrays.update(data.at_sym.to_arrays_map("ats_"))
        return arrays, {"n": data.n}

    def _unpack_data(self, arrays, meta, dataset) -> GraphMatMatrices:
        n = int(meta["n"])
        return GraphMatMatrices(
            at=DCSRMatrix.from_arrays_map(arrays, n, "at_"),
            at_sym=DCSRMatrix.from_arrays_map(arrays, n, "ats_"),
            out_degrees=arrays["out_degrees"], n=n)

    # -- kernels -------------------------------------------------------
    def _count_degree_profile(self, data: GraphMatMatrices) -> WorkProfile:
        """GraphMat's "run algorithm 1": a degree-count SpMV pass."""
        p = WorkProfile()
        p.add_round(units=data.at.nnz + data.n,
                    memory_bytes=8.0 * data.at.nnz, skew=0.05)
        return p

    def _run_bfs(self, loaded, root: int):
        data = loaded.data
        parent, level, profile, stats = kernels.bfs_spmv(
            data.at, data.out_degrees, root)
        return ({"parent": parent, "level": level}, profile, None,
                {"depth": float(stats["depth"])})

    def _run_sssp(self, loaded, root: int):
        dist, profile, stats = kernels.sssp_bellman_spmv(loaded.data.at, root)
        return ({"dist": dist}, profile, None,
                {"iterations": float(stats["iterations"])})

    def _run_pagerank(self, loaded, damping: float = 0.85,
                      max_iterations: int = 1000, epsilon: float = 0.0):
        # ``epsilon`` accepted for interface homogeneity but unused:
        # "with GraphMat there is no computation of |p_k - p_k'|"
        # (Sec. IV-A) -- it stops only on exact no-change.
        data = loaded.data
        rank, iterations, profile = kernels.pagerank_float32(
            data.at, data.out_degrees, damping, max_iterations)
        return ({"rank": rank}, profile, iterations, {})

    def _run_wcc(self, loaded):
        labels, rounds, profile = kernels.wcc_minplus(loaded.data.at_sym)
        return ({"labels": labels}, profile, rounds, {})

    def _run_cdlp(self, loaded, iterations: int = 10):
        labels, iters, profile = kernels.cdlp_spmv(loaded.data.at, iterations)
        return ({"labels": labels}, profile, iters, {})

    def _run_lcc(self, loaded):
        lcc, profile, stats = kernels.lcc_spmv(loaded.data.at)
        return ({"lcc": lcc}, profile, None, {"wedges": stats["wedges"]})

    def _run_kcore(self, loaded):
        core, supersteps, profile = kernels.kcore_spmv(loaded.data.at)
        return ({"core": core}, profile, supersteps,
                {"max_core": float(core.max()) if core.size else 0.0})

    def _run_mis(self, loaded, seed: int | None = None):
        from repro.algorithms.mis import DEFAULT_MIS_SEED, mis_priorities

        pr = mis_priorities(loaded.data.n,
                            DEFAULT_MIS_SEED if seed is None else seed)
        in_set, rounds, profile = kernels.mis_spmv(loaded.data.at, pr)
        return ({"in_set": in_set.astype(np.int64)}, profile, rounds,
                {"set_size": float(in_set.sum())})

    # -- native phase view ---------------------------------------------
    def phase_breakdown(self, loaded, result) -> GraphMatPhases:
        """Assemble the native log phases for one kernel execution."""
        count_sim = self.thread_model.simulate(
            self._count_degree_profile(loaded.data),
            calibration.cost_params(self.name, "pagerank", self.machine),
            self.n_threads)
        n = loaded.n_vertices
        return GraphMatPhases(
            file_read_s=loaded.read_s,
            load_graph_s=(loaded.build_s or 0.0) + loaded.read_s,
            count_degree_s=count_sim.time_s,
            run_algorithm_s=result.time_s,
            # Writing one text line per vertex.
            print_output_s=n * 1.5e-8 * 32 / self.n_threads,
            algorithm_label=_ALGO_LOG_NAMES[result.algorithm],
        )
