"""GraphMat reimplementation.

"GraphMat, a library and programming model along with reference
implementations of common algorithms.  GraphMat uses a doubly-compressed
sparse row representation and OpenMP for parallelism." (Sec. III-C)

Behavioural fidelity points:

* every algorithm is a generalized SpMV over a semiring on the
  doubly-compressed transpose adjacency (vertex programs compile to
  SparseMatVec in the real system);
* distinct execution phases logged in GraphMat's native format, the
  one Table I excerpts: file read -> graph load -> engine init ->
  "run algorithm 1 (count degree)" -> "run algorithm 2 (...)" ->
  print output -> deinitialize;
* PageRank runs in single precision and stops only when *no vertex's
  rank changes between iterations* (infinity-norm exactly zero) -- the
  stopping-criterion mismatch Sec. IV-A analyzes, which gives GraphMat
  the largest iteration counts in Fig 4;
* SpMV machinery overhead on small graphs, paying off on the dense
  dota-league (Sec. IV-C).
"""

from repro.systems.graphmat.system import GraphMatSystem

__all__ = ["GraphMatSystem"]
